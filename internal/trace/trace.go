// Package trace is the per-request tracing subsystem: a head-sampled,
// allocation-disciplined span recorder threaded through the whole request
// lifecycle (generator submit → LB pick → accept-queue wait → thread-pool
// admit → CPU/disk service → connection-pool wait → network edge →
// downstream call → finish/drop/reject). Every sampled request yields one
// span tree in simulated time; on top of the raw trees the package builds
//
//   - blame attribution: the decomposition of p50/p95/p99 response time
//     into per-tier, per-wait-type components over time windows — the
//     paper's queue-amplification story made quantitative;
//   - a controller audit trail (audit.go): every Decision Controller
//     action annotated with its cause, on the same clock as the spans;
//   - exporters (export.go): Chrome trace-event JSON for Perfetto, an
//     ASCII waterfall of the slowest-request reservoir, and blame CSV.
//
// Discipline: the tracer owns a private rng stream, so arming it never
// perturbs the simulation's random draws — a traced run is byte-identical
// to an untraced run. A nil *Tracer and a nil *Span are valid receivers
// for every method (the disabled fast path), and that path performs zero
// allocations; span storage is pooled so steady-state sampling recycles
// trees instead of growing the heap.
package trace

import (
	"math"
	"sync/atomic"

	"conscale/internal/des"
	"conscale/internal/rng"
)

// TierID identifies the tier a span's server belongs to, derived from the
// server naming convention so the package needs no dependency on the
// cluster. TierClient covers spans that never reached a server (LB reject
// with an empty backend set).
type TierID uint8

// The tiers, in request-path order.
const (
	TierClient TierID = iota
	TierWeb
	TierApp
	TierCache
	TierDB
	NumTiers
)

// String implements fmt.Stringer.
func (t TierID) String() string {
	switch t {
	case TierClient:
		return "client"
	case TierWeb:
		return "web"
	case TierApp:
		return "tomcat"
	case TierCache:
		return "memcached"
	case TierDB:
		return "mysql"
	default:
		return "tier?"
	}
}

// TierOf maps a server name to its tier by the cluster's naming convention
// ("web1", "tomcat2", "memcached1", "mysql1"); unknown names (including
// "", a span that never entered a server) map to TierClient.
func TierOf(server string) TierID {
	switch {
	case hasPrefix(server, "web"):
		return TierWeb
	case hasPrefix(server, "tomcat"):
		return TierApp
	case hasPrefix(server, "memcached"):
		return TierCache
	case hasPrefix(server, "mysql"):
		return TierDB
	default:
		return TierClient
	}
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// SegKind classifies one segment of a span's wall time.
type SegKind uint8

// The wait/service classes of the blame decomposition. Queue covers the
// accept-queue plus thread-pool admission wait (the soft-resource wait the
// paper's SCT model governs); PoolWait is the connection-pool acquire wait
// on the calling side; CPUWait/DiskWait are hardware run-queue waits;
// CPU/Disk are actual service; Dwell is protocol dwell that holds a thread
// but no hardware (PhaseSleep); Net is injected network-edge latency; Shed
// is queue time a request accrued before an admission policy dropped it —
// shed load stays attributed instead of vanishing from the decomposition.
const (
	SegQueue SegKind = iota
	SegPoolWait
	SegCPUWait
	SegCPU
	SegDiskWait
	SegDisk
	SegDwell
	SegNet
	SegShed
	NumSegKinds
)

// String implements fmt.Stringer.
func (k SegKind) String() string {
	switch k {
	case SegQueue:
		return "queue"
	case SegPoolWait:
		return "pool-wait"
	case SegCPUWait:
		return "cpu-wait"
	case SegCPU:
		return "cpu"
	case SegDiskWait:
		return "disk-wait"
	case SegDisk:
		return "disk"
	case SegDwell:
		return "dwell"
	case SegNet:
		return "net"
	case SegShed:
		return "shed"
	default:
		return "seg?"
	}
}

// IsWait reports whether the kind is time spent waiting rather than being
// served (the numerator of the blame story).
func (k SegKind) IsWait() bool {
	switch k {
	case SegQueue, SegPoolWait, SegCPUWait, SegDiskWait, SegNet, SegShed:
		return true
	default:
		return false
	}
}

// Outcome is a span's terminal state.
type Outcome uint8

// Span outcomes. Open marks a span still in flight (or abandoned by a
// crash; EndRequest closes those with the request's outcome).
const (
	OutcomeOpen Outcome = iota
	OutcomeOK
	OutcomeFailed
	OutcomeRejected
	// OutcomeShed marks a request dropped by an admission policy at
	// accept-queue entry (distinct from Rejected, the hard accept-queue
	// overflow).
	OutcomeShed
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeOpen:
		return "open"
	case OutcomeOK:
		return "ok"
	case OutcomeFailed:
		return "failed"
	case OutcomeRejected:
		return "rejected"
	case OutcomeShed:
		return "shed"
	default:
		return "outcome?"
	}
}

// Segment is one classified interval of a span's wall time.
type Segment struct {
	Kind       SegKind
	Start, End des.Time
}

// Span is one tier visit of a sampled request. The root span is the whole
// client-observed request (its Server is the web VM that served it);
// children are downstream calls, in issue order. All methods are safe on a
// nil receiver — the disabled/unsampled fast path.
type Span struct {
	tr *Tracer

	// ID is unique per tracer; the root's ID identifies the trace.
	ID uint64
	// Op is the root's servlet name ("" on child spans).
	Op string
	// Server is the VM that executed the visit ("" before admission, or
	// forever for an LB reject with no backends).
	Server string
	// LB and PickInFlight record the balancer decision: which balancer
	// dispatched the span and the chosen backend's in-flight count at
	// pick time (the leastconn signal).
	LB           string
	PickInFlight int

	// Start is span creation (submit); Arrive is arrival at the server;
	// Admit is thread-pool admission (negative while never admitted); End
	// is the terminal time.
	Start, Arrive, Admit, End des.Time
	Outcome                   Outcome

	Segs     []Segment
	Children []*Span
	parent   *Span
}

// RT returns the span's wall time (End-Start); 0 while open.
func (s *Span) RT() des.Time {
	if s == nil || s.Outcome == OutcomeOpen {
		return 0
	}
	return s.End - s.Start
}

// EnterServer marks arrival at a server's accept queue.
func (s *Span) EnterServer(server string, now des.Time) {
	if s == nil {
		return
	}
	s.Server = server
	s.Arrive = now
}

// Admitted marks thread-pool admission and books the accept-queue plus
// admit wait as a SegQueue segment.
func (s *Span) Admitted(now des.Time) {
	if s == nil {
		return
	}
	s.Admit = now
	if now > s.Arrive {
		s.Segs = append(s.Segs, Segment{Kind: SegQueue, Start: s.Arrive, End: now})
	}
}

// AddSeg books one classified interval. Zero-length intervals are dropped.
func (s *Span) AddSeg(kind SegKind, start, end des.Time) {
	if s == nil || end <= start {
		return
	}
	s.Segs = append(s.Segs, Segment{Kind: kind, Start: start, End: end})
}

// AddProc books one processor-pool demand that issued at t0 and completed
// at now after d of contiguous service: the run-queue wait [t0, now-d] and
// the service interval [now-d, now].
func (s *Span) AddProc(waitKind, svcKind SegKind, t0, d, now des.Time) {
	if s == nil {
		return
	}
	svcStart := now - d
	if svcStart > t0 {
		s.Segs = append(s.Segs, Segment{Kind: waitKind, Start: t0, End: svcStart})
	}
	s.AddSeg(svcKind, svcStart, now)
}

// NotePick records the balancer decision that routed this span.
func (s *Span) NotePick(lbName string, inFlight int) {
	if s == nil {
		return
	}
	s.LB = lbName
	s.PickInFlight = inFlight
}

// StartChild opens a downstream-call span. Returns nil on a nil receiver,
// so instrumentation can thread it unconditionally.
func (s *Span) StartChild(now des.Time) *Span {
	if s == nil {
		return nil
	}
	c := s.tr.get()
	c.Start = now
	c.Arrive = now
	c.parent = s
	s.Children = append(s.Children, c)
	return c
}

// Finish closes the span. A span already closed stays closed (crash paths
// may race a close against the request bubbling up).
func (s *Span) Finish(now des.Time, o Outcome) {
	if s == nil || s.Outcome != OutcomeOpen {
		return
	}
	// A span abandoned in the accept queue (drop, kill) spent its whole
	// server life waiting; book it so failed requests decompose too.
	// Admission sheds get their own component so dropped load stays
	// visible in the blame decomposition.
	if o != OutcomeOK && s.Admit < 0 && s.Server != "" && now > s.Arrive {
		kind := SegQueue
		if o == OutcomeShed {
			kind = SegShed
		}
		s.Segs = append(s.Segs, Segment{Kind: kind, Start: s.Arrive, End: now})
	}
	s.End = now
	s.Outcome = o
}

// Walk visits the span and its descendants depth-first, parents first.
func (s *Span) Walk(fn func(sp *Span, depth int)) {
	if s == nil {
		return
	}
	s.walk(fn, 0)
}

func (s *Span) walk(fn func(sp *Span, depth int), depth int) {
	fn(s, depth)
	for _, c := range s.Children {
		c.walk(fn, depth+1)
	}
}

// Config tunes a Tracer. Zero values take the documented defaults.
type Config struct {
	// Seed feeds the tracer's private sampling stream. The stream is
	// independent of every simulation stream, so traced and untraced runs
	// of the same experiment are byte-identical.
	Seed uint64
	// SampleRate is the head-sampling probability (default 1/64; 1 traces
	// everything).
	SampleRate float64
	// Reservoir is how many slowest-request span trees to retain in full
	// (default 12; negative keeps none).
	Reservoir int
	// BlameWindow is the aggregation window of the blame table (default
	// 10 s).
	BlameWindow des.Time
}

// Tracer samples requests into span trees and aggregates them into the
// blame table and the slowest-request reservoir. Start/End run on the
// simulation goroutine; the enable switch and sample rate are atomics so a
// management agent can flip them live from another goroutine.
type Tracer struct {
	enabled  atomic.Bool
	rateBits atomic.Uint64

	started   atomic.Uint64 // requests offered
	sampled   atomic.Uint64 // requests traced
	completed atomic.Uint64 // traced requests finished OK
	failed    atomic.Uint64 // traced requests failed or rejected

	rnd    *rng.Source
	nextID uint64
	free   []*Span // span pool

	resvMax int
	resv    []*Span // min-heap on RT: [0] is the fastest of the kept slow set

	blame blameAgg
	audit *Audit
	onEnd func(root *Span)
}

// New builds a tracer, enabled, with its audit trail armed.
func New(cfg Config) *Tracer {
	if cfg.SampleRate <= 0 {
		cfg.SampleRate = 1.0 / 64
	}
	if cfg.SampleRate > 1 {
		cfg.SampleRate = 1
	}
	if cfg.Reservoir == 0 {
		cfg.Reservoir = 12
	}
	if cfg.Reservoir < 0 {
		cfg.Reservoir = 0
	}
	if cfg.BlameWindow <= 0 {
		cfg.BlameWindow = 10 * des.Second
	}
	t := &Tracer{
		rnd:     rng.New(cfg.Seed ^ 0x7ace5eed),
		resvMax: cfg.Reservoir,
		blame:   blameAgg{window: cfg.BlameWindow},
		audit:   NewAudit(),
	}
	t.rateBits.Store(math.Float64bits(cfg.SampleRate))
	t.enabled.Store(true)
	return t
}

// Audit returns the tracer's controller audit trail (never nil on a
// non-nil tracer).
func (t *Tracer) Audit() *Audit {
	if t == nil {
		return nil
	}
	return t.audit
}

// SetEnabled flips tracing live (safe from any goroutine).
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Enabled reports the live switch.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetSampleRate changes the head-sampling probability live (clamped to
// [0, 1]; safe from any goroutine).
func (t *Tracer) SetSampleRate(r float64) {
	if t == nil {
		return
	}
	if r < 0 || math.IsNaN(r) {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	t.rateBits.Store(math.Float64bits(r))
}

// SampleRate returns the live head-sampling probability.
func (t *Tracer) SampleRate() float64 {
	if t == nil {
		return 0
	}
	return math.Float64frombits(t.rateBits.Load())
}

// Stats returns the lifetime counters: requests offered, sampled, and —
// of the sampled — completed OK vs failed/rejected.
func (t *Tracer) Stats() (started, sampled, completed, failed uint64) {
	if t == nil {
		return 0, 0, 0, 0
	}
	return t.started.Load(), t.sampled.Load(), t.completed.Load(), t.failed.Load()
}

// StartRequest offers one client request to the head sampler. It returns
// the root span, or nil when the tracer is nil, disabled, or the request
// was not drawn — the nil span then makes every downstream hook a no-op.
func (t *Tracer) StartRequest(op string, now des.Time) *Span {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	t.started.Add(1)
	rate := math.Float64frombits(t.rateBits.Load())
	// The draw is unconditional past the enable gate so the sampling
	// stream stays aligned across live rate changes.
	if t.rnd.Float64() >= rate {
		return nil
	}
	t.sampled.Add(1)
	s := t.get()
	s.Op = op
	s.Start = now
	s.Arrive = now
	return s
}

// EndRequest closes a sampled request: unfinished spans are closed with
// the request outcome (crash and reject paths abandon spans mid-tree),
// the tree is folded into the blame table, offered to the slowest-request
// reservoir, and recycled unless the reservoir kept it.
func (t *Tracer) EndRequest(root *Span, now des.Time, ok bool) {
	if t == nil || root == nil {
		return
	}
	closeOpen(root, now, ok)
	if ok {
		t.completed.Add(1)
	} else {
		t.failed.Add(1)
	}
	t.blame.add(root)
	if t.onEnd != nil {
		t.onEnd(root)
	}
	if t.offer(root) {
		return
	}
	t.recycle(root)
}

// SetOnEnd installs a tap called from EndRequest with every sampled,
// fully closed span tree, before the tree is offered to the reservoir or
// recycled (simulation goroutine only — set it before the run starts).
// The callback must not retain the tree: spans are pooled, so anything it
// wants to keep has to be summarized by value. The unsampled/disabled
// path never reaches the hook, so the nil-span fast path stays
// allocation-free.
func (t *Tracer) SetOnEnd(fn func(root *Span)) {
	if t != nil {
		t.onEnd = fn
	}
}

func closeOpen(s *Span, now des.Time, ok bool) {
	o := OutcomeOK
	if !ok {
		o = OutcomeFailed
	}
	s.Finish(now, o)
	// Segments booked ahead of time (dwell is scheduled to its full length
	// at entry) can overshoot a span cut short by a kill; clamp them so the
	// decomposition never claims more time than the span lived.
	for i := range s.Segs {
		if s.Segs[i].Start > s.End {
			s.Segs[i].Start = s.End
		}
		if s.Segs[i].End > s.End {
			s.Segs[i].End = s.End
		}
	}
	for _, c := range s.Children {
		closeOpen(c, now, ok)
	}
}

// get pops a pooled span or allocates one.
func (t *Tracer) get() *Span {
	t.nextID++
	var s *Span
	if n := len(t.free); n > 0 {
		s = t.free[n-1]
		t.free[n-1] = nil
		t.free = t.free[:n-1]
	} else {
		s = &Span{}
	}
	s.tr = t
	s.ID = t.nextID
	s.Admit = -1
	return s
}

// recycle returns a tree to the pool, keeping slice capacity.
func (t *Tracer) recycle(s *Span) {
	for _, c := range s.Children {
		t.recycle(c)
	}
	segs := s.Segs[:0]
	children := s.Children[:0]
	*s = Span{Segs: segs, Children: children}
	if len(t.free) < 4096 {
		t.free = append(t.free, s)
	}
}

// offer pushes the finished root into the slowest-K reservoir; it reports
// whether the tree was kept. The displaced fastest tree is recycled.
func (t *Tracer) offer(root *Span) bool {
	if t.resvMax <= 0 {
		return false
	}
	if len(t.resv) < t.resvMax {
		t.resv = append(t.resv, root)
		t.siftUp(len(t.resv) - 1)
		return true
	}
	if root.RT() <= t.resv[0].RT() {
		return false
	}
	evicted := t.resv[0]
	t.resv[0] = root
	t.siftDown(0)
	t.recycle(evicted)
	return true
}

func (t *Tracer) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if t.resv[p].RT() <= t.resv[i].RT() {
			return
		}
		t.resv[p], t.resv[i] = t.resv[i], t.resv[p]
		i = p
	}
}

func (t *Tracer) siftDown(i int) {
	n := len(t.resv)
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && t.resv[l].RT() < t.resv[m].RT() {
			m = l
		}
		if r < n && t.resv[r].RT() < t.resv[m].RT() {
			m = r
		}
		if m == i {
			return
		}
		t.resv[m], t.resv[i] = t.resv[i], t.resv[m]
		i = m
	}
}

// Slowest returns the reservoir's span trees, slowest first. The trees
// stay owned by the tracer; callers must not mutate them.
func (t *Tracer) Slowest() []*Span {
	if t == nil {
		return nil
	}
	out := make([]*Span, len(t.resv))
	copy(out, t.resv)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].RT() > out[j-1].RT(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
