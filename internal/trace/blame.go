package trace

import (
	"math"
	"sort"

	"conscale/internal/des"
)

// blameRec is the compact per-request record the aggregator keeps instead
// of whole span trees: response time plus the (tier, segment-kind) time
// decomposition, keyed by completion time for windowing.
type blameRec struct {
	end  des.Time
	rt   float64
	ok   bool
	shed bool
	comp [NumTiers][NumSegKinds]float32
}

// blameAgg accumulates every sampled request's decomposition.
type blameAgg struct {
	window des.Time
	recs   []blameRec
}

// add folds one finished span tree into the record list.
func (a *blameAgg) add(root *Span) {
	rec := blameRec{
		end: root.End,
		rt:  float64(root.RT()),
		ok:  root.Outcome == OutcomeOK,
	}
	root.Walk(func(sp *Span, _ int) {
		if sp.Outcome == OutcomeShed {
			rec.shed = true
		}
		tier := TierOf(sp.Server)
		for _, seg := range sp.Segs {
			rec.comp[tier][seg.Kind] += float32(seg.End - seg.Start)
		}
	})
	a.recs = append(a.recs, rec)
}

// BlameRow is one (window, latency-class) row of the blame table: how many
// requests, their mean response time, and where that time went per tier
// and segment kind (mean seconds per request).
type BlameRow struct {
	// Window is the window's start time.
	Window des.Time
	// Class is "mean", "p50", "p95", or "p99" — the mean decomposition of
	// all requests, the p40–p60 band, the p90–p99 band, and the top 1%.
	Class string
	// Requests is the class population in the window.
	Requests int
	// Sheds counts requests in the class whose span tree contains an
	// admission shed — dropped load attributed to its window and class.
	Sheds int
	// RT is the class's mean response time (seconds).
	RT float64
	// Comp is the class's mean per-request time in each (tier, kind)
	// component (seconds). Summing Comp recovers RT up to think-free
	// client time (LB dispatch is instantaneous).
	Comp [NumTiers][NumSegKinds]float64
}

// WaitShare returns the fraction of the row's response time spent in
// soft-resource waits (queue + pool) at the given tier.
func (r BlameRow) WaitShare(tier TierID) float64 {
	if r.RT <= 0 {
		return 0
	}
	return (r.Comp[tier][SegQueue] + r.Comp[tier][SegPoolWait]) / r.RT
}

// Total returns the row's mean time in one component (seconds).
func (r BlameRow) Total(tier TierID, kind SegKind) float64 { return r.Comp[tier][kind] }

// Sum returns the row's total attributed time across every component
// (seconds) — up to scheduling epsilons, the row's mean response time.
func (r BlameRow) Sum() float64 {
	var sum float64
	for tier := TierID(0); tier < NumTiers; tier++ {
		for kind := SegKind(0); kind < NumSegKinds; kind++ {
			sum += r.Comp[tier][kind]
		}
	}
	return sum
}

// BlameTable builds the windowed latency decomposition from everything
// sampled so far: rows ordered by window then class (mean, p50, p95, p99);
// classes with no population are omitted.
func (t *Tracer) BlameTable() []BlameRow {
	if t == nil {
		return nil
	}
	return t.blame.table()
}

// blameClasses defines the percentile bands of the table: [lo, hi) rank
// fractions of the window's requests sorted by response time.
var blameClasses = []struct {
	name   string
	lo, hi float64
}{
	{"mean", 0, 1},
	{"p50", 0.40, 0.60},
	{"p95", 0.90, 0.99},
	{"p99", 0.99, 1},
}

func (a *blameAgg) table() []BlameRow {
	if len(a.recs) == 0 {
		return nil
	}
	byWindow := make(map[des.Time][]int)
	var windows []des.Time
	for i, rec := range a.recs {
		w := des.Time(math.Floor(float64(rec.end/a.window))) * a.window
		if _, seen := byWindow[w]; !seen {
			windows = append(windows, w)
		}
		byWindow[w] = append(byWindow[w], i)
	}
	sort.Slice(windows, func(i, j int) bool { return windows[i] < windows[j] })

	var rows []BlameRow
	for _, w := range windows {
		idx := byWindow[w]
		sort.Slice(idx, func(i, j int) bool { return a.recs[idx[i]].rt < a.recs[idx[j]].rt })
		n := len(idx)
		for _, cl := range blameClasses {
			lo, hi := int(cl.lo*float64(n)), int(cl.hi*float64(n))
			if hi > n {
				hi = n
			}
			if cl.hi == 1 {
				hi = n
			}
			if hi <= lo {
				continue
			}
			row := BlameRow{Window: w, Class: cl.name, Requests: hi - lo}
			for _, i := range idx[lo:hi] {
				rec := &a.recs[i]
				if rec.shed {
					row.Sheds++
				}
				row.RT += rec.rt
				for tier := TierID(0); tier < NumTiers; tier++ {
					for kind := SegKind(0); kind < NumSegKinds; kind++ {
						row.Comp[tier][kind] += float64(rec.comp[tier][kind])
					}
				}
			}
			inv := 1 / float64(row.Requests)
			row.RT *= inv
			for tier := TierID(0); tier < NumTiers; tier++ {
				for kind := SegKind(0); kind < NumSegKinds; kind++ {
					row.Comp[tier][kind] *= inv
				}
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// BlameSummary condenses rows into one aggregate decomposition over a time
// range [from, to) and class — the per-mode comparison the blame
// experiment prints. Returns false when no row matches.
func BlameSummary(rows []BlameRow, class string, from, to des.Time) (BlameRow, bool) {
	agg := BlameRow{Class: class, Window: from}
	total := 0
	for _, r := range rows {
		if r.Class != class || r.Window < from || r.Window >= to {
			continue
		}
		agg.Requests += r.Requests
		agg.Sheds += r.Sheds
		agg.RT += r.RT * float64(r.Requests)
		for tier := TierID(0); tier < NumTiers; tier++ {
			for kind := SegKind(0); kind < NumSegKinds; kind++ {
				agg.Comp[tier][kind] += r.Comp[tier][kind] * float64(r.Requests)
			}
		}
		total += r.Requests
	}
	if total == 0 {
		return BlameRow{}, false
	}
	inv := 1 / float64(total)
	agg.RT *= inv
	for tier := TierID(0); tier < NumTiers; tier++ {
		for kind := SegKind(0); kind < NumSegKinds; kind++ {
			agg.Comp[tier][kind] *= inv
		}
	}
	return agg, true
}
