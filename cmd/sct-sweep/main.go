// Command sct-sweep reproduces the paper's fixed-concurrency profiling
// experiments (Fig. 3 and Fig. 7): it stresses one server at controlled
// concurrency levels and emits the measured concurrency-throughput-RT
// curve as CSV, with the knee (Qlower) reported on stderr.
//
// Usage:
//
//	sct-sweep -target db -cores 1 > mysql_1core.csv
//	sct-sweep -target app -cores 2 -dataset 2 -levels 5,10,15,20,30
//	sct-sweep -target db -mix readwrite
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"conscale/internal/experiment"
	"conscale/internal/plot"
	"conscale/internal/rubbos"
)

func main() {
	var (
		target   = flag.String("target", "db", "server under test: app (Tomcat) or db (MySQL)")
		cores    = flag.Int("cores", 1, "vCPU count of the target server")
		mix      = flag.String("mix", "browse", "workload mix: browse or readwrite")
		dataset  = flag.Float64("dataset", 1, "dataset scale (1 = original RUBBoS)")
		levels   = flag.String("levels", "", "comma-separated concurrency levels (default: the paper's 5..100)")
		seed     = flag.Uint64("seed", 1, "experiment seed")
		showPlot = flag.Bool("plot", false, "render the concurrency-throughput curve as an ASCII chart on stderr")
	)
	flag.Parse()

	var cfg experiment.SweepConfig
	switch strings.ToLower(*target) {
	case "app", "tomcat":
		cfg = experiment.DefaultSweepConfig(experiment.TargetApp)
	case "db", "mysql":
		cfg = experiment.DefaultSweepConfig(experiment.TargetDB)
	default:
		fmt.Fprintf(os.Stderr, "unknown target %q\n", *target)
		os.Exit(2)
	}
	cfg.Cores = *cores
	cfg.DatasetScale = *dataset
	cfg.Seed = *seed
	switch strings.ToLower(*mix) {
	case "browse", "browse-only":
		cfg.Mix = rubbos.BrowseOnly
	case "readwrite", "read-write", "rw":
		cfg.Mix = rubbos.ReadWrite
	default:
		fmt.Fprintf(os.Stderr, "unknown mix %q\n", *mix)
		os.Exit(2)
	}
	if *levels != "" {
		cfg.Levels = nil
		for _, part := range strings.Split(*levels, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "bad level %q\n", part)
				os.Exit(2)
			}
			cfg.Levels = append(cfg.Levels, n)
		}
	}

	res := experiment.Sweep(cfg)
	fmt.Fprintf(os.Stderr, "%s %d-core %s dataset=%.1f: Qlower=%d TPmax=%.0f req/s\n",
		*target, *cores, cfg.Mix, *dataset, res.Qlower, res.MaxTP)
	if *showPlot {
		var xs, tps, rts []float64
		for _, p := range res.Points {
			xs = append(xs, float64(p.Level))
			tps = append(tps, p.Throughput)
			rts = append(rts, p.MeanRT*1000)
		}
		fmt.Fprintln(os.Stderr, plot.New("throughput vs concurrency", 80, 14).
			Labels("concurrency", "req/s").Line("tp", xs, tps, '*').Render())
		fmt.Fprintln(os.Stderr, plot.New("response time vs concurrency", 80, 10).
			Labels("concurrency", "ms").Line("rt", xs, rts, '+').Render())
	}
	if err := experiment.WriteSweepCSV(os.Stdout, res); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
