package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// gatePairs are the hot paths the trend gate watches: each benchmark
// paired with a reference measured in the same process — the inline-heap
// engine against the frozen container/heap baseline, and the striper
// barrier/batch paths against the engine's schedule→fire hot path.
// Committed BENCH_*.json files come from different machines, so the gate
// compares the machine-independent same-process ns ratio numerator ÷
// denominator rather than absolute nanoseconds.
var gatePairs = [][2]string{
	{"des/schedule_fire", "des_baseline/schedule_fire"},
	{"des/schedule_fire_depth1k", "des_baseline/schedule_fire_depth1k"},
	{"des/cancel_heavy", "des_baseline/cancel_heavy"},
	{"des/striper_barrier_loaded", "des/schedule_fire"},
	{"des/striper_idle_fastforward", "des/schedule_fire"},
	{"des/engine_at_batch", "des/schedule_fire"},
	{"forensics/recorder_snapshot", "des/schedule_fire"},
	{"forensics/recorder_audit_event", "des/schedule_fire"},
	{"forensics/detector_tick", "des/schedule_fire"},
	{"twin/tick_steady", "des/schedule_fire"},
	{"qnet/snapshot_solve", "des/schedule_fire"},
}

// historyReport is the slice of a committed BENCH_*.json the gate
// reads; every schema since conscale-bench/2 carries it unchanged.
type historyReport struct {
	Path       string   `json:"-"`
	Schema     string   `json:"schema"`
	Benchmarks []Result `json:"benchmarks"`
}

// loadHistory reads the committed trajectory files, skipping paths that
// do not exist (older checkouts may predate a schema) but failing on
// unreadable or malformed ones.
func loadHistory(paths []string) ([]historyReport, error) {
	var out []historyReport
	for _, p := range paths {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		raw, err := os.ReadFile(p)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, err
		}
		h := historyReport{Path: p}
		if err := json.Unmarshal(raw, &h); err != nil {
			return nil, fmt.Errorf("%s: %v", p, err)
		}
		if len(h.Benchmarks) > 0 {
			out = append(out, h)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no committed benchmark history found in %s", strings.Join(paths, ", "))
	}
	return out, nil
}

// resultIndex maps benchmark names to their measurements.
func resultIndex(rs []Result) map[string]Result {
	m := make(map[string]Result, len(rs))
	for _, r := range rs {
		m[r.Name] = r
	}
	return m
}

// gateCheck diffs the current microbenchmark run against the committed
// trajectory and returns one violation string per regression:
//
//   - ratio rule: for every gate pair, the current des/baseline ns
//     ratio must stay within slack× the worst (largest) ratio any
//     committed report recorded — a same-machine relative measure, so a
//     slow CI runner cannot fail the gate but a real hot-path slowdown
//     (which moves des without moving the frozen baseline) does;
//   - allocation rule: allocs/op is machine-independent, so any
//     benchmark present in history must not allocate more now — a
//     zero-alloc path must stay at zero, a nonzero one gets the same
//     slack factor.
func gateCheck(current []Result, history []historyReport, slack float64) []string {
	var violations []string
	cur := resultIndex(current)

	for _, pair := range gatePairs {
		worst, worstPath := 0.0, ""
		for _, h := range history {
			idx := resultIndex(h.Benchmarks)
			hn, okHN := idx[pair[0]]
			hb, okHB := idx[pair[1]]
			if !okHN || !okHB || hb.NsPerOp <= 0 {
				continue
			}
			if r := hn.NsPerOp / hb.NsPerOp; r > worst {
				worst, worstPath = r, h.Path
			}
		}
		if worst == 0 {
			continue // pair newer than every committed report
		}
		n, okN := cur[pair[0]]
		b, okB := cur[pair[1]]
		if !okN || !okB || b.NsPerOp <= 0 {
			violations = append(violations, fmt.Sprintf("gate pair %s / %s missing from the current run", pair[0], pair[1]))
			continue
		}
		curRatio := n.NsPerOp / b.NsPerOp
		if curRatio > slack*worst {
			violations = append(violations, fmt.Sprintf(
				"%s regressed: ns ratio vs %s is %.3f, worst committed %.3f (%s), limit %.3f",
				pair[0], pair[1], curRatio, worst, worstPath, slack*worst))
		}
	}

	for _, r := range current {
		// Compare against the newest committed report that knows the
		// benchmark — the most recent accepted trajectory point.
		var hist *Result
		for _, h := range history {
			idx := resultIndex(h.Benchmarks)
			if hr, ok := idx[r.Name]; ok {
				c := hr
				hist = &c
			}
		}
		if hist == nil {
			continue
		}
		switch {
		case hist.AllocsPerOp == 0 && r.AllocsPerOp > 0:
			violations = append(violations, fmt.Sprintf(
				"%s now allocates: %d allocs/op, committed trajectory holds it at zero", r.Name, r.AllocsPerOp))
		case hist.AllocsPerOp > 0 && float64(r.AllocsPerOp) > slack*float64(hist.AllocsPerOp):
			violations = append(violations, fmt.Sprintf(
				"%s allocation growth: %d allocs/op vs committed %d, limit %.1f",
				r.Name, r.AllocsPerOp, hist.AllocsPerOp, slack*float64(hist.AllocsPerOp)))
		}
	}
	return violations
}

// gatePasses is how many times the gate re-runs the microbenchmark
// suite before judging. Per benchmark it keeps the minimum ns/op and
// the maximum allocs/op across passes: co-tenant load, GC pauses, and
// frequency scaling only ever push a time measurement *up*, so the
// minimum is the observation closest to the true cost — single-shot
// runs of the ~100 µs benches (MVA solves, detector ticks) otherwise
// flake either side of the slack limit on busy 1-core runners — while
// allocs/op is deterministic, so taking the maximum can only surface a
// real allocation, never hide one.
const gatePasses = 3

// bestOf merges repeated microbenchmark passes per the gatePasses rule.
func bestOf(passes [][]Result) []Result {
	best := passes[0]
	for _, pass := range passes[1:] {
		idx := resultIndex(pass)
		for i, r := range best {
			p, ok := idx[r.Name]
			if !ok {
				continue
			}
			if p.NsPerOp < best[i].NsPerOp {
				best[i].NsPerOp = p.NsPerOp
			}
			if p.AllocsPerOp > best[i].AllocsPerOp {
				best[i].AllocsPerOp = p.AllocsPerOp
			}
			if p.BytesPerOp > best[i].BytesPerOp {
				best[i].BytesPerOp = p.BytesPerOp
			}
		}
	}
	return best
}

// runGate is the `-gate` mode: re-measure the hot-path microbenchmarks
// (best of gatePasses runs), diff them against the committed BENCH_2..9
// trajectory, and exit 1 on regression. slowdown (normally 1) multiplies
// the measured des-side nanoseconds — the self-test hook that proves the
// gate trips on an injected hot-path slowdown.
func runGate(historyPaths []string, slack, slowdown float64) {
	history, err := loadHistory(historyPaths)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("== trend gate: %d committed reports, slack %.2fx, best of %d passes\n", len(history), slack, gatePasses)
	passes := make([][]Result, gatePasses)
	for i := range passes {
		passes[i] = microBenches()
	}
	current := bestOf(passes)
	if slowdown != 1 {
		fmt.Printf("   injecting %.1fx slowdown into the des hot paths (self-test)\n", slowdown)
		for i, r := range current {
			if strings.HasPrefix(r.Name, "des/") {
				current[i].NsPerOp *= slowdown
			}
		}
	}
	for _, pair := range gatePairs {
		idx := resultIndex(current)
		if n, b := idx[pair[0]], idx[pair[1]]; b.NsPerOp > 0 {
			fmt.Printf("   %-28s ratio %.3f (des %.1f ns/op, baseline %.1f ns/op)\n",
				pair[0], n.NsPerOp/b.NsPerOp, n.NsPerOp, b.NsPerOp)
		}
	}
	violations := gateCheck(current, history, slack)
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "FAIL:", v)
		}
		os.Exit(1)
	}
	fmt.Println("trend gate passed: hot paths within the committed trajectory")
}
