// Command benchreport measures the repo's performance-critical paths and
// writes the results as a machine-readable JSON file (BENCH_10.json), so
// every future change has a perf trajectory to compare against:
//
//   - DES engine microbenchmarks (inline 4-ary heap) against the frozen
//     container/heap baseline in internal/des/baseline — ns/op, B/op,
//     allocs/op for the schedule→fire hot path, a 1k-deep heap, and the
//     cancel-heavy Ticker pattern;
//   - metrics.Recorder Arrive/Depart and window-close costs;
//   - trace microbenchmarks: the disabled-tracer hot path (must stay at
//     zero allocations) and the sampled span-tree lifecycle;
//   - the end-to-end experiment harness: the Table 1 run matrix executed
//     sequentially and with the parallel worker pool, wall-clock for both,
//     plus a byte-identity check that the fan-out changes nothing;
//   - tracer overhead end to end: the same run untraced, head-sampled at
//     1/64, and fully sampled, with a timeline byte-identity check;
//   - telemetry registry microbenchmarks: counter increment and histogram
//     observe enabled and disabled (the disabled path must stay at zero
//     allocations) plus a full scrape snapshot of a populated registry;
//   - telemetry overhead end to end: the same run bare and with the whole
//     layer armed (registry, collectors, 5 s scraper, SLO monitor), with a
//     timeline byte-identity check;
//   - scale-mode microbenchmarks (striper window barrier empty and
//     loaded, idle fast-forward, Engine.AtBatch bulk insert, streaming
//     arrival hot path — the loaded barrier and AtBatch must stay at
//     zero allocations) and the client-count sweep — {10k, 100k, 1M}
//     clients × {EC2, DCM, ConScale} (the 10k tier only under -short) —
//     reporting wall time, events/sec, peak heap, and controller tails,
//     plus a striped-vs-sequential byte-identity check and a striper
//     worker-count scaling curve (1/2/4/8 workers on the ConScale cell);
//   - a controller-zoo smoke tournament: every registered controller on
//     one trace, ranked on p99 / SLO-burn minutes / VM-hours (the full
//     factorial lives in `experiments -run tournament`);
//   - forensics microbenchmarks: the disabled flight-recorder hot path
//     (must stay at zero allocations), armed snapshot/audit-event
//     recording, and the episode detector's observe and tick costs;
//   - forensics overhead end to end: the same run bare and with the
//     whole forensics layer armed (recorder rings, episode detector,
//     1 s snapshot ticker), with a timeline byte-identity check;
//   - analytical-twin microbenchmarks (the disabled observer hot path
//     must stay at zero allocations; the steady tick with its MVA solve;
//     the qnet snapshot+solve cost at 2500 clients) and twin overhead
//     end to end: the same run bare and twin-armed, with a timeline
//     byte-identity check;
//   - admission-control microbenchmarks: every policy family's Admit
//     hot path (always, queue-cap, priority, and CoDel's admit+feedback
//     cycle — all must stay at zero allocations) plus the shed-rate
//     meter, and admission overhead end to end: the same run bare,
//     with an explicit always-admit policy installed (must stay
//     byte-identical to no policy at all), and with the queue-cap
//     shedder armed to smoke the drop path.
//
// The -gate mode re-measures only the hot-path microbenchmarks and
// diffs them against the committed BENCH_2..10 trajectory: the
// machine-independent same-process ns ratios (des vs the frozen
// baseline, striper barrier vs the engine hot path) must stay within
// the slack factor of the worst committed ratio, and allocs/op must
// not grow.
//
// Usage:
//
//	benchreport -out BENCH_10.json          # full measurement
//	benchreport -short -out BENCH_10.json   # CI smoke (seconds, not minutes)
//	benchreport -gate                       # trend gate vs committed BENCH_2..10
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"conscale/internal/admission"
	"conscale/internal/cluster"
	"conscale/internal/des"
	"conscale/internal/des/baseline"
	"conscale/internal/experiment"
	"conscale/internal/forensics"
	"conscale/internal/metrics"
	"conscale/internal/qnet"
	"conscale/internal/rng"
	"conscale/internal/rubbos"
	"conscale/internal/scaling"
	"conscale/internal/telemetry"
	"conscale/internal/trace"
	"conscale/internal/twin"
	"conscale/internal/workload"
)

// Result is one microbenchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Ops         int     `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Harness records the end-to-end experiment fan-out measurement.
type Harness struct {
	Experiment    string  `json:"experiment"`
	Workers       int     `json:"workers"`
	SequentialSec float64 `json:"sequential_seconds"`
	ParallelSec   float64 `json:"parallel_seconds"`
	Speedup       float64 `json:"speedup"`
	OutputsMatch  bool    `json:"outputs_byte_identical"`
}

// Tracing records the tracer overhead measurement: one run untraced, the
// same run head-sampled at the canonical 1/64, and fully sampled.
type Tracing struct {
	Experiment        string  `json:"experiment"`
	OffSec            float64 `json:"tracer_off_seconds"`
	SampledSec        float64 `json:"tracer_sampled_seconds"`
	FullSec           float64 `json:"tracer_full_seconds"`
	SampledPct        float64 `json:"sampled_overhead_pct"`
	FullPct           float64 `json:"full_overhead_pct"`
	TimelineIdentical bool    `json:"timeline_byte_identical"`
}

// Telemetry records the telemetry-layer overhead measurement: one run
// bare and the same run with the full layer armed.
type Telemetry struct {
	Experiment        string  `json:"experiment"`
	OffSec            float64 `json:"telemetry_off_seconds"`
	OnSec             float64 `json:"telemetry_on_seconds"`
	OverheadPct       float64 `json:"overhead_pct"`
	Scrapes           int     `json:"scrapes"`
	TimelineIdentical bool    `json:"timeline_byte_identical"`
}

// Scale records the scale-mode sweep: one row per (mode, clients) point
// plus the striped-vs-sequential identity verdict and the striper
// worker-count scaling curve (same cell, workers varied).
type Scale struct {
	Sweep                    string                `json:"sweep"`
	Rows                     []experiment.ScaleRow `json:"rows"`
	Curve                    []experiment.ScaleRow `json:"curve,omitempty"`
	StripedMatchesSequential bool                  `json:"striped_byte_identical"`
	ProcessPeakRSSMB         float64               `json:"process_peak_rss_mb"`
}

// Tournament records the controller-zoo smoke tournament: every
// registered controller on one trace, ranked on the tournament axes.
type Tournament struct {
	Factorial string                      `json:"factorial"`
	Ranking   []experiment.TournamentRank `json:"ranking"`
	Cells     []experiment.TournamentCell `json:"cells"`
}

// Forensics records the flight-recorder + episode-detector overhead
// measurement: one run bare and the same run with the layer armed.
type Forensics struct {
	Experiment        string  `json:"experiment"`
	OffSec            float64 `json:"forensics_off_seconds"`
	OnSec             float64 `json:"forensics_on_seconds"`
	OverheadPct       float64 `json:"overhead_pct"`
	Episodes          int     `json:"episodes"`
	Snapshots         uint64  `json:"snapshots"`
	TimelineIdentical bool    `json:"timeline_byte_identical"`
}

// Twin records the analytical-twin overhead measurement: one run bare
// and the same run with the twin observer armed.
type Twin struct {
	Experiment        string  `json:"experiment"`
	OffSec            float64 `json:"twin_off_seconds"`
	OnSec             float64 `json:"twin_on_seconds"`
	OverheadPct       float64 `json:"overhead_pct"`
	Ticks             uint64  `json:"ticks"`
	Applicable        uint64  `json:"applicable_ticks"`
	Drifts            uint64  `json:"drift_flags"`
	TimelineIdentical bool    `json:"timeline_byte_identical"`
}

// Admission records the admission-layer overhead measurement: one run
// bare (no policy installed), the same run with an explicit always-admit
// policy on the web and app tiers — the installed no-op must be
// byte-identical to no policy at all — and one run with the queue-cap
// shedder armed to smoke the drop path end to end.
type Admission struct {
	Experiment        string  `json:"experiment"`
	OffSec            float64 `json:"admission_off_seconds"`
	AlwaysSec         float64 `json:"always_admit_seconds"`
	OverheadPct       float64 `json:"overhead_pct"`
	TimelineIdentical bool    `json:"timeline_byte_identical"`
	ShedPolicy        string  `json:"shed_policy"`
	Sheds             uint64  `json:"sheds"`
	BrowseSheds       uint64  `json:"browse_sheds"`
	RWSheds           uint64  `json:"read_write_sheds"`
}

// Report is the BENCH_10.json document.
type Report struct {
	Schema     string             `json:"schema"`
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Short      bool               `json:"short"`
	Benchmarks []Result           `json:"benchmarks"`
	Harness    Harness            `json:"harness"`
	Tracing    Tracing            `json:"tracing"`
	Telemetry  Telemetry          `json:"telemetry"`
	Scale      Scale              `json:"scale"`
	Tournament Tournament         `json:"tournament"`
	Forensics  Forensics          `json:"forensics"`
	Twin       Twin               `json:"twin"`
	Admission  Admission          `json:"admission"`
	Derived    map[string]float64 `json:"derived"`
}

func measure(name string, fn func(b *testing.B)) Result {
	r := testing.Benchmark(fn)
	return Result{
		Name:        name,
		Ops:         r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

func main() {
	var (
		out          = flag.String("out", "BENCH_10.json", "output path for the JSON report")
		short        = flag.Bool("short", false, "shrink the harness measurement for CI smoke runs")
		gate         = flag.Bool("gate", false, "trend-gate mode: measure only the hot-path microbenchmarks, diff against the committed history, exit 1 on regression")
		history      = flag.String("gate-history", "BENCH_2.json,BENCH_3.json,BENCH_4.json,BENCH_5.json,BENCH_6.json,BENCH_7.json,BENCH_8.json,BENCH_9.json,BENCH_10.json", "comma-separated committed reports the gate diffs against")
		gateSlack    = flag.Float64("gate-slack", 1.25, "allowed growth factor over the worst committed ratio before the gate fails")
		gateSlowdown = flag.Float64("gate-slowdown", 1, "multiply the measured des hot-path nanoseconds (self-test hook: 2 must fail the gate)")
	)
	flag.Parse()

	if *gate {
		runGate(strings.Split(*history, ","), *gateSlack, *gateSlowdown)
		return
	}

	rep := Report{
		Schema:     "conscale-bench/10",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Short:      *short,
		Derived:    map[string]float64{},
	}

	rep.Benchmarks = microBenches()
	for _, r := range rep.Benchmarks {
		fmt.Printf("   %-36s %12.1f ns/op %8d B/op %6d allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}

	// Headline derived numbers: the acceptance criteria of the perf work.
	byName := resultIndex(rep.Benchmarks)
	if n, b := byName["des/schedule_fire"], byName["des_baseline/schedule_fire"]; b.AllocsPerOp > 0 {
		rep.Derived["des_allocs_reduction_pct"] = 100 * float64(b.AllocsPerOp-n.AllocsPerOp) / float64(b.AllocsPerOp)
		rep.Derived["des_ns_speedup"] = b.NsPerOp / n.NsPerOp
	}
	rep.Derived["trace_disabled_allocs_per_op"] = float64(byName["trace/disabled_hot_path"].AllocsPerOp)
	rep.Derived["trace_sampled_ns_per_request"] = byName["trace/sampled_span_tree"].NsPerOp
	rep.Derived["telemetry_disabled_allocs_per_op"] = float64(byName["telemetry/disabled_hot_path"].AllocsPerOp)
	rep.Derived["telemetry_counter_ns_per_inc"] = byName["telemetry/counter_inc"].NsPerOp
	rep.Derived["telemetry_histogram_ns_per_observe"] = byName["telemetry/histogram_observe"].NsPerOp
	rep.Derived["forensics_disabled_allocs_per_op"] = float64(byName["forensics/recorder_disabled"].AllocsPerOp)
	rep.Derived["forensics_snapshot_ns_per_op"] = byName["forensics/recorder_snapshot"].NsPerOp
	rep.Derived["forensics_tick_ns_per_op"] = byName["forensics/detector_tick"].NsPerOp
	rep.Derived["twin_disabled_allocs_per_op"] = float64(byName["twin/observe_disabled"].AllocsPerOp)
	rep.Derived["twin_tick_ns_per_op"] = byName["twin/tick_steady"].NsPerOp
	rep.Derived["qnet_snapshot_solve_ns_per_op"] = byName["qnet/snapshot_solve"].NsPerOp
	var admitAllocs float64
	for _, n := range []string{"admission/always_admit", "admission/queue_cap_admit",
		"admission/priority_admit", "admission/codel_admit_observe"} {
		if a := float64(byName[n].AllocsPerOp); a > admitAllocs {
			admitAllocs = a
		}
	}
	rep.Derived["admission_admit_allocs_per_op"] = admitAllocs
	rep.Derived["admission_codel_ns_per_op"] = byName["admission/codel_admit_observe"].NsPerOp
	runEndToEnd(&rep, *short, *out)
}

// microBenches measures every microbenchmark section — the hot paths
// the trend gate watches plus the observability layers' unit costs.
func microBenches() []Result {
	var results []Result
	fmt.Println("== DES engine microbenchmarks (inline 4-ary heap vs container/heap baseline)")
	results = append(results,
		measure("des/schedule_fire", func(b *testing.B) {
			b.ReportAllocs()
			e := des.New()
			fn := func() {}
			for i := 0; i < b.N; i++ {
				e.After(1, fn)
				e.Step()
			}
		}),
		measure("des_baseline/schedule_fire", func(b *testing.B) {
			b.ReportAllocs()
			e := baseline.New()
			fn := func() {}
			for i := 0; i < b.N; i++ {
				e.After(1, fn)
				e.Step()
			}
		}),
		measure("des/schedule_fire_depth1k", func(b *testing.B) {
			b.ReportAllocs()
			e := des.New()
			fn := func() {}
			for i := 0; i < 1000; i++ {
				e.After(des.Time(1+i), fn)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.After(1000, fn)
				e.Step()
			}
		}),
		measure("des_baseline/schedule_fire_depth1k", func(b *testing.B) {
			b.ReportAllocs()
			e := baseline.New()
			fn := func() {}
			for i := 0; i < 1000; i++ {
				e.After(baseline.Time(1+i), fn)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.After(1000, fn)
				e.Step()
			}
		}),
		measure("des/cancel_heavy", func(b *testing.B) {
			b.ReportAllocs()
			e := des.New()
			fn := func() {}
			for i := 0; i < b.N; i++ {
				h := e.After(1, fn)
				e.After(1, fn)
				h.Cancel()
				e.Step()
			}
		}),
		measure("des_baseline/cancel_heavy", func(b *testing.B) {
			b.ReportAllocs()
			e := baseline.New()
			fn := func() {}
			for i := 0; i < b.N; i++ {
				h := e.After(1, fn)
				e.After(1, fn)
				h.Cancel()
				e.Step()
			}
		}),
	)

	fmt.Println("== metrics.Recorder microbenchmarks")
	results = append(results,
		measure("metrics/arrive_depart", func(b *testing.B) {
			b.ReportAllocs()
			r := metrics.NewRecorder(50 * des.Millisecond)
			now := des.Time(0.001)
			for i := 0; i < b.N; i++ {
				r.Arrive(now)
				r.Depart(now, 0.002)
			}
		}),
		measure("metrics/window_advance", func(b *testing.B) {
			b.ReportAllocs()
			r := metrics.NewRecorder(50 * des.Millisecond)
			now := des.Time(0)
			for i := 0; i < b.N; i++ {
				r.Arrive(now)
				r.Depart(now, 0.002)
				now += 50 * des.Millisecond
				if i%1024 == 1023 {
					r.Flush(now)
				}
			}
		}),
	)

	fmt.Println("== trace microbenchmarks (disabled hot path must stay 0 allocs/op)")
	results = append(results,
		measure("trace/disabled_hot_path", func(b *testing.B) {
			b.ReportAllocs()
			tr := trace.New(trace.Config{SampleRate: 1})
			tr.SetEnabled(false)
			for i := 0; i < b.N; i++ {
				sp := tr.StartRequest("browse", 1)
				sp.EnterServer("web1", 1)
				sp.NotePick("lb", 3)
				sp.Admitted(2)
				sp.AddProc(trace.SegCPUWait, trace.SegCPU, 2, 1, 3)
				child := sp.StartChild(3)
				child.Finish(4, trace.OutcomeOK)
				tr.EndRequest(sp, 4, true)
			}
		}),
		measure("trace/sampled_span_tree", func(b *testing.B) {
			b.ReportAllocs()
			tr := trace.New(trace.Config{SampleRate: 1, Reservoir: -1})
			for i := 0; i < b.N; i++ {
				// Re-arm periodically so the blame record list doesn't grow
				// without bound across benchmark scaling.
				if i%(1<<16) == 0 {
					tr = trace.New(trace.Config{SampleRate: 1, Reservoir: -1})
				}
				now := des.Time(i)
				sp := tr.StartRequest("browse", now)
				sp.EnterServer("web1", now)
				sp.Admitted(now + 0.001)
				sp.AddProc(trace.SegCPUWait, trace.SegCPU, now+0.001, 0.002, now+0.004)
				child := sp.StartChild(now + 0.004)
				child.EnterServer("mysql1", now+0.004)
				child.Admitted(now + 0.004)
				child.AddProc(trace.SegDiskWait, trace.SegDisk, now+0.004, 0.001, now+0.006)
				child.Finish(now+0.006, trace.OutcomeOK)
				tr.EndRequest(sp, now+0.007, true)
			}
		}),
	)
	fmt.Println("== telemetry registry microbenchmarks (disabled hot path must stay 0 allocs/op)")
	results = append(results,
		measure("telemetry/counter_inc", func(b *testing.B) {
			b.ReportAllocs()
			reg := telemetry.NewRegistry()
			c := reg.Counter("bench_requests_total", "bench", "server", "web1")
			for i := 0; i < b.N; i++ {
				c.Inc()
			}
		}),
		measure("telemetry/histogram_observe", func(b *testing.B) {
			b.ReportAllocs()
			reg := telemetry.NewRegistry()
			h := reg.Histogram("bench_rt_seconds", "bench", "server", "web1")
			for i := 0; i < b.N; i++ {
				h.Observe(0.042)
			}
		}),
		measure("telemetry/disabled_hot_path", func(b *testing.B) {
			b.ReportAllocs()
			reg := telemetry.NewRegistry()
			reg.SetEnabled(false)
			c := reg.Counter("bench_requests_total", "bench", "server", "web1")
			h := reg.Histogram("bench_rt_seconds", "bench", "server", "web1")
			g := reg.Gauge("bench_depth", "bench", "server", "web1")
			for i := 0; i < b.N; i++ {
				c.Inc()
				h.Observe(0.042)
				g.Set(float64(i))
			}
		}),
		measure("telemetry/scrape_snapshot", func(b *testing.B) {
			// A populated registry shaped like a mid-size cluster: 24
			// servers x (histogram + 2 counters + 3 gauges).
			reg := telemetry.NewRegistry()
			for s := 0; s < 24; s++ {
				name := fmt.Sprintf("web%d", s)
				h := reg.Histogram("bench_rt_seconds", "bench", "server", name)
				for i := 0; i < 200; i++ {
					h.Observe(0.01 * float64(i%37+1))
				}
				reg.Counter("bench_completed_total", "bench", "server", name).Add(1000)
				reg.Counter("bench_errored_total", "bench", "server", name).Add(3)
				reg.Gauge("bench_threads", "bench", "server", name).Set(40)
				reg.Gauge("bench_queue", "bench", "server", name).Set(7)
				reg.Gauge("bench_cpu", "bench", "server", name).Set(0.6)
			}
			var buf bytes.Buffer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := reg.WriteProm(&buf); err != nil {
					b.Fatal(err)
				}
			}
		}),
	)
	fmt.Println("== scale-mode microbenchmarks (striper barrier, streaming arrival)")
	results = append(results,
		measure("des/striper_window_barrier", func(b *testing.B) {
			// Pure synchronization cost: 8 empty shards crossing one
			// lookahead window per op.
			b.ReportAllocs()
			s := des.NewStriper(8, des.Millisecond)
			for i := 0; i < b.N; i++ {
				s.RunUntil(s.Now() + des.Millisecond)
			}
		}),
		measure("des/striper_cross_send", func(b *testing.B) {
			b.ReportAllocs()
			s := des.NewStriper(2, des.Millisecond)
			fn := func() {}
			for i := 0; i < b.N; i++ {
				s.Shard(0).Send(1, des.Millisecond, fn)
				s.RunUntil(s.Now() + 2*des.Millisecond)
			}
		}),
		measure("des/striper_barrier_loaded", func(b *testing.B) {
			// Steady-state cost of a traffic-carrying window barrier:
			// run the window, sort per-shard outboxes, k-way merge,
			// bulk-insert 32 deliveries. The re-arming tick closures are
			// created once at setup, so this must stay at 0 allocs/op —
			// the gate's allocation rule pins it.
			b.ReportAllocs()
			const horizon = des.Millisecond
			s := des.NewStriper(4, horizon)
			fn := func() {}
			for i := 0; i < 4; i++ {
				i := i
				sh := s.Shard(i)
				var tick func()
				tick = func() {
					for k := 0; k < 8; k++ {
						sh.Send((i+1+k)%4, horizon+des.Time(k%3)*horizon, fn)
					}
					sh.Eng.At(sh.Eng.Now()+horizon, tick)
				}
				sh.Eng.At(0, tick)
			}
			for w := 0; w < 64; w++ {
				s.RunUntil(s.Now() + horizon)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.RunUntil(s.Now() + horizon)
			}
		}),
		measure("des/striper_idle_fastforward", func(b *testing.B) {
			// Skipping a one-second idle stretch (1000 empty lookahead
			// windows) per op: idle time must be nearly free.
			b.ReportAllocs()
			s := des.NewStriper(4, des.Millisecond)
			sh := s.Shard(0)
			var tick func()
			tick = func() { sh.Eng.At(sh.Eng.Now()+des.Second, tick) }
			sh.Eng.At(0, tick)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.RunUntil(s.Now() + des.Second)
			}
		}),
		measure("des/engine_at_batch", func(b *testing.B) {
			// The barrier bulk-insert path: 64 merged deliveries into a
			// warm engine per op; steady state must stay at 0 allocs/op.
			b.ReportAllocs()
			e := des.New()
			fn := func() {}
			evs := make([]des.BatchEvent, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				at := e.Now() + 1
				for j := range evs {
					evs[j] = des.BatchEvent{At: at + des.Time(j), Fn: fn}
				}
				e.AtBatch(evs)
				e.RunUntil(at + des.Time(len(evs)))
			}
		}),
		measure("workload/streaming_arrival", func(b *testing.B) {
			// Per-request cost of the streaming population with an
			// immediately-completing system: arrival draw + class pick +
			// submit + stream-stats fold.
			b.ReportAllocs()
			eng := des.New()
			gen := workload.NewGenerator(eng, rng.New(1), workload.GeneratorConfig{
				Trace:     workload.NewConstantTrace(1_000_000, des.Time(1e9)),
				ThinkTime: 1,
				Streaming: true,
			}, func(done func(ok bool)) { done(true) })
			gen.Start()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step()
			}
		}),
	)
	fmt.Println("== forensics microbenchmarks (disabled recorder hot path must stay 0 allocs/op)")
	results = append(results,
		measure("forensics/recorder_disabled", func(b *testing.B) {
			b.ReportAllocs()
			f := forensics.New(forensics.Config{})
			f.SetEnabled(false)
			ev := trace.AuditEvent{Time: 1, Kind: trace.AuditScaleOutLaunch, Tier: "tomcat", Detail: "tomcat2"}
			var snap forensics.TierSnapshot
			for i := 0; i < b.N; i++ {
				f.Rec.ObserveAudit(ev)
				f.Rec.RecordSnapshot(snap)
				f.Det.Observe(des.Time(i), 0.1, true)
				f.Det.Tick(des.Time(i))
			}
		}),
		measure("forensics/recorder_snapshot", func(b *testing.B) {
			b.ReportAllocs()
			r := forensics.NewRecorder(forensics.Config{})
			var snap forensics.TierSnapshot
			for i := 0; i < b.N; i++ {
				snap.Time = des.Time(i)
				r.RecordSnapshot(snap)
			}
		}),
		measure("forensics/recorder_audit_event", func(b *testing.B) {
			b.ReportAllocs()
			r := forensics.NewRecorder(forensics.Config{})
			ev := trace.AuditEvent{Kind: trace.AuditScaleOutLaunch, Tier: "tomcat", Detail: "tomcat2"}
			for i := 0; i < b.N; i++ {
				ev.Time = des.Time(i)
				r.ObserveAudit(ev)
			}
		}),
		measure("forensics/detector_observe", func(b *testing.B) {
			// Steady-state windowed-tail feed: 10 samples per simulated
			// second, so the window prunes as fast as it grows.
			b.ReportAllocs()
			d := forensics.NewDetector(forensics.DetectorConfig{})
			for i := 0; i < b.N; i++ {
				d.Observe(des.Time(i)/10, 0.1, true)
			}
		}),
		measure("forensics/detector_tick", func(b *testing.B) {
			// One detector evaluation per op over a populated 10 s window
			// (the per-simulated-second cost of episode detection).
			b.ReportAllocs()
			d := forensics.NewDetector(forensics.DetectorConfig{})
			for i := 0; i < 200; i++ {
				d.Observe(des.Time(i)/10, 0.1, true)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now := 20 + des.Time(i)
				for j := 0; j < 10; j++ {
					d.Observe(now, 0.1, true)
				}
				d.Tick(now)
			}
		}),
	)
	fmt.Println("== analytical-twin microbenchmarks (disabled observer hot path must stay 0 allocs/op)")
	twinModel := func() twin.Model {
		wl := rubbos.NewWorkload(rubbos.BrowseOnly, 1)
		return twin.Model{
			Workload:  func() *rubbos.Workload { return wl },
			ThinkTime: 3,
			WebCores:  1, AppCores: 1, DBCores: 1,
			DiskChans: 1,
		}
	}
	results = append(results,
		measure("twin/observe_disabled", func(b *testing.B) {
			b.ReportAllocs()
			o := twin.New(twin.Config{}, twinModel())
			o.SetEnabled(false)
			for i := 0; i < b.N; i++ {
				o.ObserveArrival()
				o.Observe(1, 0.05, true)
			}
		}),
		measure("twin/tick_steady", func(b *testing.B) {
			// One full twin evaluation per op: window harvest, config
			// snapshot, MVA solve at 2500 clients, residuals, drift update.
			b.ReportAllocs()
			o := twin.New(twin.Config{}, twinModel())
			obs := twin.Observation{Clients: 2500,
				Web: twin.TierObs{Ready: 2, CPU: 0.5},
				App: twin.TierObs{Ready: 4, CPU: 0.5},
				DB:  twin.TierObs{Ready: 2, CPU: 0.5}}
			for i := 0; i < b.N; i++ {
				obs.Time += o.Config().Interval
				for j := 0; j < 100; j++ {
					o.ObserveArrival()
					o.Observe(obs.Time, 0.05, true)
				}
				o.Tick(obs)
			}
		}),
		measure("qnet/snapshot_solve", func(b *testing.B) {
			// The twin's analytical core in isolation: build the network
			// from a live-state snapshot and solve the MVA recursion at
			// 2500 clients.
			b.ReportAllocs()
			wl := rubbos.NewWorkload(rubbos.BrowseOnly, 1)
			for i := 0; i < b.N; i++ {
				net, err := qnet.SnapshotNetwork(qnet.LiveState{
					Workload: wl, ThinkTime: 3,
					WebVMs: 1, AppVMs: 2, DBVMs: 1,
					WebCores: 1, AppCores: 1, DBCores: 1,
					DiskChans: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				net.Solve(2500)
			}
		}),
	)
	fmt.Println("== admission-control microbenchmarks (every Admit hot path must stay 0 allocs/op)")
	newPolicy := func(spec string) admission.Policy {
		cfg, err := admission.Parse(spec)
		if err != nil {
			panic(err)
		}
		p, err := admission.New(cfg)
		if err != nil {
			panic(err)
		}
		return p
	}
	results = append(results,
		measure("admission/always_admit", func(b *testing.B) {
			b.ReportAllocs()
			p := newPolicy("always")
			for i := 0; i < b.N; i++ {
				p.Admit(des.Time(i)*des.Millisecond, admission.ClassBrowse, i&1023)
			}
		}),
		measure("admission/queue_cap_admit", func(b *testing.B) {
			b.ReportAllocs()
			p := newPolicy("queue-cap:cap=300")
			for i := 0; i < b.N; i++ {
				p.Admit(des.Time(i)*des.Millisecond, admission.ClassBrowse, i&1023)
			}
		}),
		measure("admission/priority_admit", func(b *testing.B) {
			b.ReportAllocs()
			p := newPolicy("priority:cap=300,browse=75")
			for i := 0; i < b.N; i++ {
				class := admission.ClassBrowse
				if i&1 == 1 {
					class = admission.ClassReadWrite
				}
				p.Admit(des.Time(i)*des.Millisecond, class, i&1023)
			}
		}),
		measure("admission/codel_admit_observe", func(b *testing.B) {
			// One admit decision plus one dequeue-sojourn feedback per
			// op, alternating below/above target so the control law
			// exercises both the reset and the dropping branch.
			b.ReportAllocs()
			p := newPolicy("codel:target=100ms,interval=200ms")
			for i := 0; i < b.N; i++ {
				now := des.Time(i) * des.Millisecond
				sojourn := 50 * des.Millisecond
				if i&1 == 1 {
					sojourn = 250 * des.Millisecond
				}
				p.ObserveDequeue(now, sojourn)
				p.Admit(now, admission.ClassBrowse, i&1023)
			}
		}),
		measure("admission/meter_observe", func(b *testing.B) {
			b.ReportAllocs()
			m := admission.NewMeter(5*des.Second, func(admission.Class, float64) {})
			for i := 0; i < b.N; i++ {
				m.Observe(des.Time(i)*des.Millisecond, admission.ClassBrowse, i&7 == 0)
			}
		}),
	)
	return results
}

// runEndToEnd performs the end-to-end measurements (harness fan-out,
// tracer/telemetry overhead, scale sweep, controller tournament),
// writes the report, and exits nonzero on any identity or
// zero-allocation violation.
func runEndToEnd(rep *Report, short bool, out string) {
	fmt.Println("== experiment harness wall time (sequential vs parallel, byte-identity checked)")
	rep.Harness = measureHarness(short)
	rep.Derived["harness_speedup"] = rep.Harness.Speedup
	fmt.Printf("   %s: sequential %.1fs, parallel %.1fs (workers=%d) -> %.2fx, identical=%v\n",
		rep.Harness.Experiment, rep.Harness.SequentialSec, rep.Harness.ParallelSec,
		rep.Harness.Workers, rep.Harness.Speedup, rep.Harness.OutputsMatch)

	fmt.Println("== tracer overhead end to end (off vs 1/64 sampled vs fully sampled)")
	rep.Tracing = measureTracing(short)
	rep.Derived["tracer_sampled_overhead_pct"] = rep.Tracing.SampledPct
	rep.Derived["tracer_full_overhead_pct"] = rep.Tracing.FullPct
	fmt.Printf("   %s: off %.1fs, sampled %.1fs (+%.1f%%), full %.1fs (+%.1f%%), timeline identical=%v\n",
		rep.Tracing.Experiment, rep.Tracing.OffSec, rep.Tracing.SampledSec, rep.Tracing.SampledPct,
		rep.Tracing.FullSec, rep.Tracing.FullPct, rep.Tracing.TimelineIdentical)

	fmt.Println("== telemetry overhead end to end (bare vs full layer armed)")
	rep.Telemetry = measureTelemetry(short)
	rep.Derived["telemetry_overhead_pct"] = rep.Telemetry.OverheadPct
	fmt.Printf("   %s: off %.1fs, on %.1fs (+%.1f%%, %d scrapes), timeline identical=%v\n",
		rep.Telemetry.Experiment, rep.Telemetry.OffSec, rep.Telemetry.OnSec,
		rep.Telemetry.OverheadPct, rep.Telemetry.Scrapes, rep.Telemetry.TimelineIdentical)

	fmt.Println("== scale mode: client-count sweep (striped byte-identity checked)")
	rep.Scale = measureScale(short)
	experiment.RenderScale(os.Stdout, rep.Scale.Rows)
	fmt.Printf("   striped byte-identical=%v, process peak RSS %.0f MB\n",
		rep.Scale.StripedMatchesSequential, rep.Scale.ProcessPeakRSSMB)
	if n := len(rep.Scale.Rows); n > 0 {
		top := rep.Scale.Rows[n-1]
		rep.Derived["scale_top_clients"] = float64(top.Clients)
		rep.Derived["scale_top_events_per_sec"] = top.EventsPerSec
		rep.Derived["scale_top_peak_heap_mb"] = top.PeakHeapMB
		rep.Derived["scale_heap_growth_ratio"] = top.PeakHeapMB / rep.Scale.Rows[0].PeakHeapMB
	}
	if len(rep.Scale.Curve) > 0 {
		fmt.Println("== striper worker-count scaling curve (conscale cell, trajectory identical at every count)")
		experiment.RenderScale(os.Stdout, rep.Scale.Curve)
		base := rep.Scale.Curve[0]
		for _, r := range rep.Scale.Curve {
			if r.Events != base.Events {
				fmt.Fprintln(os.Stderr, "FAIL: scaling-curve rows executed different event counts")
				os.Exit(1)
			}
			if r.Workers == 4 && r.WallSec > 0 {
				rep.Derived["scale_speedup_4workers"] = base.WallSec / r.WallSec
			}
		}
	}

	fmt.Println("== forensics overhead end to end (bare vs recorder + episode detector armed)")
	rep.Forensics = measureForensics(short)
	rep.Derived["forensics_overhead_pct"] = rep.Forensics.OverheadPct
	fmt.Printf("   %s: off %.1fs, on %.1fs (+%.1f%%, %d episodes, %d snapshots), timeline identical=%v\n",
		rep.Forensics.Experiment, rep.Forensics.OffSec, rep.Forensics.OnSec,
		rep.Forensics.OverheadPct, rep.Forensics.Episodes, rep.Forensics.Snapshots,
		rep.Forensics.TimelineIdentical)

	fmt.Println("== twin overhead end to end (bare vs analytical-twin observer armed)")
	rep.Twin = measureTwin(short)
	rep.Derived["twin_overhead_pct"] = rep.Twin.OverheadPct
	fmt.Printf("   %s: off %.1fs, on %.1fs (+%.1f%%, %d ticks / %d applicable / %d drifts), timeline identical=%v\n",
		rep.Twin.Experiment, rep.Twin.OffSec, rep.Twin.OnSec, rep.Twin.OverheadPct,
		rep.Twin.Ticks, rep.Twin.Applicable, rep.Twin.Drifts, rep.Twin.TimelineIdentical)

	fmt.Println("== admission overhead end to end (bare vs always-admit installed, byte-identity checked)")
	rep.Admission = measureAdmission(short)
	rep.Derived["admission_overhead_pct"] = rep.Admission.OverheadPct
	fmt.Printf("   %s: off %.1fs, always %.1fs (+%.1f%%), timeline identical=%v; %s shed %d (browse %d, rw %d)\n",
		rep.Admission.Experiment, rep.Admission.OffSec, rep.Admission.AlwaysSec,
		rep.Admission.OverheadPct, rep.Admission.TimelineIdentical,
		rep.Admission.ShedPolicy, rep.Admission.Sheds, rep.Admission.BrowseSheds, rep.Admission.RWSheds)

	fmt.Println("== controller-zoo smoke tournament (every controller, one trace)")
	rep.Tournament = measureTournament(short)
	rep.Derived["tournament_controllers"] = float64(len(rep.Tournament.Ranking))
	for _, r := range rep.Tournament.Ranking {
		fmt.Printf("   %-20s p99=%.1fms burn=%.2fmin vm=%.3fh score=%d\n",
			r.Controller, r.MeanP99Ms, r.BurnMin, r.VMHours, r.Score)
	}

	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
	if !rep.Harness.OutputsMatch {
		fmt.Fprintln(os.Stderr, "FAIL: parallel harness output diverged from sequential")
		os.Exit(1)
	}
	if !rep.Tracing.TimelineIdentical {
		fmt.Fprintln(os.Stderr, "FAIL: traced run's timeline diverged from the untraced run")
		os.Exit(1)
	}
	if rep.Derived["trace_disabled_allocs_per_op"] != 0 {
		fmt.Fprintln(os.Stderr, "FAIL: disabled tracer hot path allocates")
		os.Exit(1)
	}
	if !rep.Telemetry.TimelineIdentical {
		fmt.Fprintln(os.Stderr, "FAIL: telemetry-armed run's timeline diverged from the bare run")
		os.Exit(1)
	}
	if rep.Derived["telemetry_disabled_allocs_per_op"] != 0 {
		fmt.Fprintln(os.Stderr, "FAIL: disabled telemetry hot path allocates")
		os.Exit(1)
	}
	if !rep.Scale.StripedMatchesSequential {
		fmt.Fprintln(os.Stderr, "FAIL: striped scale run diverged from the sequential fallback")
		os.Exit(1)
	}
	if !rep.Forensics.TimelineIdentical {
		fmt.Fprintln(os.Stderr, "FAIL: forensics-armed run's timeline diverged from the bare run")
		os.Exit(1)
	}
	if rep.Derived["forensics_disabled_allocs_per_op"] != 0 {
		fmt.Fprintln(os.Stderr, "FAIL: disabled forensics hot path allocates")
		os.Exit(1)
	}
	if !rep.Twin.TimelineIdentical {
		fmt.Fprintln(os.Stderr, "FAIL: twin-armed run's timeline diverged from the bare run")
		os.Exit(1)
	}
	if rep.Derived["twin_disabled_allocs_per_op"] != 0 {
		fmt.Fprintln(os.Stderr, "FAIL: disabled twin hot path allocates")
		os.Exit(1)
	}
	if !rep.Admission.TimelineIdentical {
		fmt.Fprintln(os.Stderr, "FAIL: always-admit run's timeline diverged from the bare run")
		os.Exit(1)
	}
	if rep.Derived["admission_admit_allocs_per_op"] != 0 {
		fmt.Fprintln(os.Stderr, "FAIL: admission Admit hot path allocates")
		os.Exit(1)
	}
}

// measureAdmission runs the same ConScale Big Spike experiment bare,
// with an explicit always-admit policy installed on the web and app
// tiers — the installed no-op must be byte-identical to no policy at
// all — and with the queue-cap shedder armed to smoke the drop path
// end to end (shed counts recorded, not gated: whether the cap engages
// depends on the configuration's headroom).
func measureAdmission(short bool) Admission {
	duration := 720 * des.Second
	users := 7500
	label := "conscale big-spike (720s)"
	if short {
		duration = 120 * des.Second
		users = 3000
		label = "conscale big-spike (120s smoke)"
	}
	run := func(spec string) (float64, []byte, *experiment.RunResult) {
		cfg := experiment.DefaultRunConfig(scaling.ConScale, workload.BigSpike)
		cfg.Duration = duration
		cfg.MaxUsers = users
		if spec != "" {
			pc, err := admission.Parse(spec)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			cfg.Admission = map[cluster.Tier]admission.Config{
				cluster.Web: pc,
				cluster.App: pc,
			}
		}
		t0 := time.Now()
		res := experiment.Run(cfg)
		sec := time.Since(t0).Seconds()
		var buf bytes.Buffer
		if err := experiment.WriteTimelineCSV(&buf, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return sec, buf.Bytes(), res
	}

	offSec, offCSV, _ := run("")
	alwaysSec, alwaysCSV, _ := run("always")
	const shedSpec = "queue-cap:cap=300"
	_, _, shedRes := run(shedSpec)

	return Admission{
		Experiment:        label,
		OffSec:            offSec,
		AlwaysSec:         alwaysSec,
		OverheadPct:       100 * (alwaysSec - offSec) / offSec,
		TimelineIdentical: bytes.Equal(offCSV, alwaysCSV),
		ShedPolicy:        shedSpec,
		Sheds:             shedRes.Sheds,
		BrowseSheds:       shedRes.ShedsByClass[admission.ClassBrowse],
		RWSheds:           shedRes.ShedsByClass[admission.ClassReadWrite],
	}
}

// measureTournament runs the controller-zoo smoke tournament: every
// registered controller on the big-spike trace at one tier — the
// schema-6 tournament block. The full factorial lives in `experiments
// -run tournament`.
func measureTournament(short bool) Tournament {
	cfg := experiment.TournamentConfig{
		Traces:   []string{workload.BigSpike},
		Tiers:    []int{2500},
		Duration: 300 * des.Second,
	}
	label := "all controllers x big-spike x 2500, 300s"
	if short {
		cfg.Duration = 120 * des.Second
		label = "all controllers x big-spike x 2500, 120s smoke"
	}
	res := experiment.RunTournament(cfg)
	return Tournament{Factorial: label, Ranking: res.Ranking, Cells: res.Cells}
}

// measureHarness times the Table 1 run matrix (the harness's dominant
// cost) sequentially and under the worker pool, and verifies the rendered
// outputs are byte-identical.
func measureHarness(short bool) Harness {
	duration := 720 * des.Second
	users := 7500
	label := "table1 matrix (6 traces x 2 controllers, 720s)"
	if short {
		duration = 120 * des.Second
		users = 3000
		label = "table1 matrix (6 traces x 2 controllers, 120s smoke)"
	}
	cfgs := make([]experiment.RunConfig, 0, 12)
	for _, tr := range workload.Names() {
		for _, mode := range []scaling.Mode{scaling.EC2, scaling.ConScale} {
			cfg := experiment.DefaultRunConfig(mode, tr)
			cfg.Duration = duration
			cfg.MaxUsers = users
			cfgs = append(cfgs, cfg)
		}
	}
	render := func() []byte {
		var buf bytes.Buffer
		for _, res := range experiment.RunMany(cfgs) {
			experiment.RenderRunSummary(&buf, res)
		}
		return buf.Bytes()
	}

	workers := runtime.GOMAXPROCS(0)
	experiment.SetMaxWorkers(1)
	t0 := time.Now()
	seq := render()
	seqSec := time.Since(t0).Seconds()

	experiment.SetMaxWorkers(workers)
	t0 = time.Now()
	par := render()
	parSec := time.Since(t0).Seconds()

	return Harness{
		Experiment:    label,
		Workers:       workers,
		SequentialSec: seqSec,
		ParallelSec:   parSec,
		Speedup:       seqSec / parSec,
		OutputsMatch:  bytes.Equal(seq, par),
	}
}

// measureTracing runs the same ConScale Large Variations experiment with
// the tracer off, head-sampled at the canonical 1/64, and fully sampled,
// and verifies tracing never perturbs the client-observed timeline.
func measureTracing(short bool) Tracing {
	duration := 720 * des.Second
	users := 7500
	label := "conscale large-variations (720s)"
	if short {
		duration = 120 * des.Second
		users = 3000
		label = "conscale large-variations (120s smoke)"
	}
	run := func(rate float64) (float64, []byte) {
		cfg := experiment.DefaultRunConfig(scaling.ConScale, workload.LargeVariations)
		cfg.Duration = duration
		cfg.MaxUsers = users
		if rate > 0 {
			cfg.Tracing = &trace.Config{SampleRate: rate}
		}
		t0 := time.Now()
		res := experiment.Run(cfg)
		sec := time.Since(t0).Seconds()
		var buf bytes.Buffer
		if err := experiment.WriteTimelineCSV(&buf, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return sec, buf.Bytes()
	}

	offSec, offCSV := run(0)
	sampledSec, sampledCSV := run(1.0 / 64)
	fullSec, fullCSV := run(1)

	return Tracing{
		Experiment:        label,
		OffSec:            offSec,
		SampledSec:        sampledSec,
		FullSec:           fullSec,
		SampledPct:        100 * (sampledSec - offSec) / offSec,
		FullPct:           100 * (fullSec - offSec) / offSec,
		TimelineIdentical: bytes.Equal(offCSV, sampledCSV) && bytes.Equal(offCSV, fullCSV),
	}
}

// measureTelemetry runs the same ConScale Large Variations experiment bare
// and with the full telemetry layer armed — registry, stack collectors,
// the 5 s sim-time scraper, and the SLO burn-rate monitor — and verifies
// observation never perturbs the client-observed timeline.
func measureTelemetry(short bool) Telemetry {
	duration := 720 * des.Second
	users := 7500
	label := "conscale large-variations (720s)"
	if short {
		duration = 120 * des.Second
		users = 3000
		label = "conscale large-variations (120s smoke)"
	}
	run := func(armed bool) (float64, []byte, int) {
		cfg := experiment.DefaultRunConfig(scaling.ConScale, workload.LargeVariations)
		cfg.Duration = duration
		cfg.MaxUsers = users
		if armed {
			cfg.Telemetry = &experiment.TelemetryOptions{}
		}
		t0 := time.Now()
		res := experiment.Run(cfg)
		sec := time.Since(t0).Seconds()
		var buf bytes.Buffer
		if err := experiment.WriteTimelineCSV(&buf, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var scrapes int
		if res.Scraper != nil {
			scrapes = res.Scraper.Scrapes()
		}
		return sec, buf.Bytes(), scrapes
	}

	offSec, offCSV, _ := run(false)
	onSec, onCSV, scrapes := run(true)

	return Telemetry{
		Experiment:        label,
		OffSec:            offSec,
		OnSec:             onSec,
		OverheadPct:       100 * (onSec - offSec) / offSec,
		Scrapes:           scrapes,
		TimelineIdentical: bytes.Equal(offCSV, onCSV),
	}
}

// measureForensics runs the same ConScale Large Variations experiment
// bare and with the forensics layer armed — flight-recorder rings, the
// 1 s snapshot ticker, and the episode detector — and verifies the
// always-on observer never perturbs the client-observed timeline.
func measureForensics(short bool) Forensics {
	duration := 720 * des.Second
	users := 7500
	label := "conscale large-variations (720s)"
	if short {
		duration = 120 * des.Second
		users = 3000
		label = "conscale large-variations (120s smoke)"
	}
	run := func(armed bool) (float64, []byte, *experiment.RunResult) {
		cfg := experiment.DefaultRunConfig(scaling.ConScale, workload.LargeVariations)
		cfg.Duration = duration
		cfg.MaxUsers = users
		if armed {
			cfg.Tracing = &trace.Config{SampleRate: 1.0 / 64}
			cfg.Forensics = &forensics.Config{}
		}
		t0 := time.Now()
		res := experiment.Run(cfg)
		sec := time.Since(t0).Seconds()
		var buf bytes.Buffer
		if err := experiment.WriteTimelineCSV(&buf, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return sec, buf.Bytes(), res
	}

	offSec, offCSV, _ := run(false)
	onSec, onCSV, res := run(true)

	var episodes int
	var snaps uint64
	if res.Forensics != nil {
		episodes = len(res.Forensics.Det.Episodes())
		snaps, _, _, _, _ = res.Forensics.Rec.Counts()
	}
	return Forensics{
		Experiment:        label,
		OffSec:            offSec,
		OnSec:             onSec,
		OverheadPct:       100 * (onSec - offSec) / offSec,
		Episodes:          episodes,
		Snapshots:         snaps,
		TimelineIdentical: bytes.Equal(offCSV, onCSV),
	}
}

// measureTwin runs the same ConScale Large Variations experiment bare
// and with the analytical-twin observer armed — the 5 s snapshot/solve
// ticker plus the per-request taps — and verifies the observer never
// perturbs the client-observed timeline.
func measureTwin(short bool) Twin {
	duration := 720 * des.Second
	users := 7500
	label := "conscale large-variations (720s)"
	if short {
		duration = 120 * des.Second
		users = 3000
		label = "conscale large-variations (120s smoke)"
	}
	run := func(armed bool) (float64, []byte, *experiment.RunResult) {
		cfg := experiment.DefaultRunConfig(scaling.ConScale, workload.LargeVariations)
		cfg.Duration = duration
		cfg.MaxUsers = users
		if armed {
			cfg.Twin = &twin.Config{}
		}
		t0 := time.Now()
		res := experiment.Run(cfg)
		sec := time.Since(t0).Seconds()
		var buf bytes.Buffer
		if err := experiment.WriteTimelineCSV(&buf, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return sec, buf.Bytes(), res
	}

	offSec, offCSV, _ := run(false)
	onSec, onCSV, res := run(true)

	t := Twin{
		Experiment:        label,
		OffSec:            offSec,
		OnSec:             onSec,
		OverheadPct:       100 * (onSec - offSec) / offSec,
		TimelineIdentical: bytes.Equal(offCSV, onCSV),
	}
	if res.Twin != nil {
		t.Ticks = res.Twin.Ticks()
		t.Applicable = res.Twin.Applicable()
		t.Drifts = res.Twin.DriftCount()
	}
	return t
}

// measureScale runs the scale-mode client-count sweep — {10k, 100k, 1M}
// × {EC2, DCM, ConScale}, or the 10k tier only under -short — verifies
// the striped worker pool is byte-identical to the sequential fallback
// on a reduced configuration, and records the worker-count scaling
// curve on the ConScale cell (1/2/4/8 pinned workers, 100k clients, or
// 1/2/4 at 10k under -short).
func measureScale(short bool) Scale {
	tiers := []int{10_000, 100_000, 1_000_000}
	label := "{10k,100k,1M} clients x {ec2,dcm,conscale}, 16 cells, 120s"
	curveClients := 100_000
	curveWorkers := []int{1, 2, 4, 8}
	if short {
		tiers = []int{10_000}
		label = "10k clients x {ec2,dcm,conscale}, 16 cells, 120s smoke"
		curveClients = 10_000
		curveWorkers = []int{1, 2, 4}
	}
	var rows []experiment.ScaleRow
	for _, clients := range tiers {
		for _, mode := range []scaling.Mode{scaling.EC2, scaling.DCM, scaling.ConScale} {
			cfg := experiment.DefaultScaleConfig(mode, clients)
			res := experiment.RunScale(cfg)
			fmt.Printf("   %s x %d: wall=%.1fs events=%d heap=%.1fMB p99=%.0fms\n",
				mode, clients, res.WallSec, res.Events,
				float64(res.PeakHeapBytes)/(1<<20), res.P99*1000)
			rows = append(rows, res.Row())
		}
	}

	var curve []experiment.ScaleRow
	for _, workers := range curveWorkers {
		cfg := experiment.DefaultScaleConfig(scaling.ConScale, curveClients)
		cfg.Workers = workers
		res := experiment.RunScale(cfg)
		fmt.Printf("   curve conscale x %d, workers=%d: wall=%.1fs events=%d\n",
			curveClients, res.Workers, res.WallSec, res.Events)
		curve = append(curve, res.Row())
	}

	// Identity check on a reduced configuration with the worker pool
	// forced wide, so the parallel path fans out even on 1-CPU runners.
	identity := func(workers int) []byte {
		cfg := experiment.DefaultScaleConfig(scaling.ConScale, 3000)
		cfg.Cells = 4
		cfg.Duration = 30 * des.Second
		cfg.Workers = workers
		var buf bytes.Buffer
		experiment.WriteScaleTimelineCSV(&buf, experiment.RunScale(cfg))
		return buf.Bytes()
	}
	seq := identity(1)
	par := identity(4)

	return Scale{
		Sweep:                    label,
		Rows:                     rows,
		Curve:                    curve,
		StripedMatchesSequential: bytes.Equal(seq, par),
		ProcessPeakRSSMB:         float64(experiment.ProcessPeakRSS()) / (1 << 20),
	}
}
