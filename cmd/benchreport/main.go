// Command benchreport measures the repo's performance-critical paths and
// writes the results as a machine-readable JSON file (BENCH_2.json), so
// every future change has a perf trajectory to compare against:
//
//   - DES engine microbenchmarks (inline 4-ary heap) against the frozen
//     container/heap baseline in internal/des/baseline — ns/op, B/op,
//     allocs/op for the schedule→fire hot path, a 1k-deep heap, and the
//     cancel-heavy Ticker pattern;
//   - metrics.Recorder Arrive/Depart and window-close costs;
//   - the end-to-end experiment harness: the Table 1 run matrix executed
//     sequentially and with the parallel worker pool, wall-clock for both,
//     plus a byte-identity check that the fan-out changes nothing.
//
// Usage:
//
//	benchreport -out BENCH_2.json          # full measurement
//	benchreport -short -out BENCH_2.json   # CI smoke (seconds, not minutes)
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"conscale/internal/des"
	"conscale/internal/des/baseline"
	"conscale/internal/experiment"
	"conscale/internal/metrics"
	"conscale/internal/scaling"
	"conscale/internal/workload"
)

// Result is one microbenchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Ops         int     `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Harness records the end-to-end experiment fan-out measurement.
type Harness struct {
	Experiment    string  `json:"experiment"`
	Workers       int     `json:"workers"`
	SequentialSec float64 `json:"sequential_seconds"`
	ParallelSec   float64 `json:"parallel_seconds"`
	Speedup       float64 `json:"speedup"`
	OutputsMatch  bool    `json:"outputs_byte_identical"`
}

// Report is the BENCH_2.json document.
type Report struct {
	Schema     string             `json:"schema"`
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Short      bool               `json:"short"`
	Benchmarks []Result           `json:"benchmarks"`
	Harness    Harness            `json:"harness"`
	Derived    map[string]float64 `json:"derived"`
}

func measure(name string, fn func(b *testing.B)) Result {
	r := testing.Benchmark(fn)
	return Result{
		Name:        name,
		Ops:         r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

func main() {
	var (
		out   = flag.String("out", "BENCH_2.json", "output path for the JSON report")
		short = flag.Bool("short", false, "shrink the harness measurement for CI smoke runs")
	)
	flag.Parse()

	rep := Report{
		Schema:     "conscale-bench/2",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Short:      *short,
		Derived:    map[string]float64{},
	}

	fmt.Println("== DES engine microbenchmarks (inline 4-ary heap vs container/heap baseline)")
	rep.Benchmarks = append(rep.Benchmarks,
		measure("des/schedule_fire", func(b *testing.B) {
			b.ReportAllocs()
			e := des.New()
			fn := func() {}
			for i := 0; i < b.N; i++ {
				e.After(1, fn)
				e.Step()
			}
		}),
		measure("des_baseline/schedule_fire", func(b *testing.B) {
			b.ReportAllocs()
			e := baseline.New()
			fn := func() {}
			for i := 0; i < b.N; i++ {
				e.After(1, fn)
				e.Step()
			}
		}),
		measure("des/schedule_fire_depth1k", func(b *testing.B) {
			b.ReportAllocs()
			e := des.New()
			fn := func() {}
			for i := 0; i < 1000; i++ {
				e.After(des.Time(1+i), fn)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.After(1000, fn)
				e.Step()
			}
		}),
		measure("des_baseline/schedule_fire_depth1k", func(b *testing.B) {
			b.ReportAllocs()
			e := baseline.New()
			fn := func() {}
			for i := 0; i < 1000; i++ {
				e.After(baseline.Time(1+i), fn)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.After(1000, fn)
				e.Step()
			}
		}),
		measure("des/cancel_heavy", func(b *testing.B) {
			b.ReportAllocs()
			e := des.New()
			fn := func() {}
			for i := 0; i < b.N; i++ {
				h := e.After(1, fn)
				e.After(1, fn)
				h.Cancel()
				e.Step()
			}
		}),
		measure("des_baseline/cancel_heavy", func(b *testing.B) {
			b.ReportAllocs()
			e := baseline.New()
			fn := func() {}
			for i := 0; i < b.N; i++ {
				h := e.After(1, fn)
				e.After(1, fn)
				h.Cancel()
				e.Step()
			}
		}),
	)

	fmt.Println("== metrics.Recorder microbenchmarks")
	rep.Benchmarks = append(rep.Benchmarks,
		measure("metrics/arrive_depart", func(b *testing.B) {
			b.ReportAllocs()
			r := metrics.NewRecorder(50 * des.Millisecond)
			now := des.Time(0.001)
			for i := 0; i < b.N; i++ {
				r.Arrive(now)
				r.Depart(now, 0.002)
			}
		}),
		measure("metrics/window_advance", func(b *testing.B) {
			b.ReportAllocs()
			r := metrics.NewRecorder(50 * des.Millisecond)
			now := des.Time(0)
			for i := 0; i < b.N; i++ {
				r.Arrive(now)
				r.Depart(now, 0.002)
				now += 50 * des.Millisecond
				if i%1024 == 1023 {
					r.Flush(now)
				}
			}
		}),
	)
	for _, r := range rep.Benchmarks {
		fmt.Printf("   %-36s %12.1f ns/op %8d B/op %6d allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}

	// Headline derived numbers: the acceptance criteria of the perf work.
	byName := map[string]Result{}
	for _, r := range rep.Benchmarks {
		byName[r.Name] = r
	}
	if n, b := byName["des/schedule_fire"], byName["des_baseline/schedule_fire"]; b.AllocsPerOp > 0 {
		rep.Derived["des_allocs_reduction_pct"] = 100 * float64(b.AllocsPerOp-n.AllocsPerOp) / float64(b.AllocsPerOp)
		rep.Derived["des_ns_speedup"] = b.NsPerOp / n.NsPerOp
	}

	fmt.Println("== experiment harness wall time (sequential vs parallel, byte-identity checked)")
	rep.Harness = measureHarness(*short)
	rep.Derived["harness_speedup"] = rep.Harness.Speedup
	fmt.Printf("   %s: sequential %.1fs, parallel %.1fs (workers=%d) -> %.2fx, identical=%v\n",
		rep.Harness.Experiment, rep.Harness.SequentialSec, rep.Harness.ParallelSec,
		rep.Harness.Workers, rep.Harness.Speedup, rep.Harness.OutputsMatch)

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
	if !rep.Harness.OutputsMatch {
		fmt.Fprintln(os.Stderr, "FAIL: parallel harness output diverged from sequential")
		os.Exit(1)
	}
}

// measureHarness times the Table 1 run matrix (the harness's dominant
// cost) sequentially and under the worker pool, and verifies the rendered
// outputs are byte-identical.
func measureHarness(short bool) Harness {
	duration := 720 * des.Second
	users := 7500
	label := "table1 matrix (6 traces x 2 controllers, 720s)"
	if short {
		duration = 120 * des.Second
		users = 3000
		label = "table1 matrix (6 traces x 2 controllers, 120s smoke)"
	}
	cfgs := make([]experiment.RunConfig, 0, 12)
	for _, tr := range workload.Names() {
		for _, mode := range []scaling.Mode{scaling.EC2, scaling.ConScale} {
			cfg := experiment.DefaultRunConfig(mode, tr)
			cfg.Duration = duration
			cfg.MaxUsers = users
			cfgs = append(cfgs, cfg)
		}
	}
	render := func() []byte {
		var buf bytes.Buffer
		for _, res := range experiment.RunMany(cfgs) {
			experiment.RenderRunSummary(&buf, res)
		}
		return buf.Bytes()
	}

	workers := runtime.GOMAXPROCS(0)
	experiment.SetMaxWorkers(1)
	t0 := time.Now()
	seq := render()
	seqSec := time.Since(t0).Seconds()

	experiment.SetMaxWorkers(workers)
	t0 = time.Now()
	par := render()
	parSec := time.Since(t0).Seconds()

	return Harness{
		Experiment:    label,
		Workers:       workers,
		SequentialSec: seqSec,
		ParallelSec:   parSec,
		Speedup:       seqSec / parSec,
		OutputsMatch:  bytes.Equal(seq, par),
	}
}
