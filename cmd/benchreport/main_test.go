package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// repoHistory loads the committed BENCH_2..10 trajectory from the repo
// root (the test binary runs in cmd/benchreport).
func repoHistory(t *testing.T) []historyReport {
	t.Helper()
	paths := make([]string, 0, 9)
	for _, f := range []string{"BENCH_2.json", "BENCH_3.json", "BENCH_4.json", "BENCH_5.json", "BENCH_6.json", "BENCH_7.json", "BENCH_8.json", "BENCH_9.json", "BENCH_10.json"} {
		paths = append(paths, filepath.Join("..", "..", f))
	}
	history, err := loadHistory(paths)
	if err != nil {
		t.Fatal(err)
	}
	return history
}

// historySelf reuses the newest committed report as the "current" run:
// a measurement identical to an accepted trajectory point must pass.
func TestGatePassesOnCommittedTrajectory(t *testing.T) {
	history := repoHistory(t)
	current := history[len(history)-1].Benchmarks
	if v := gateCheck(current, history, 1.25); len(v) != 0 {
		t.Fatalf("committed trajectory failed its own gate: %v", v)
	}
}

// TestGateFailsOnInjectedSlowdown is the acceptance criterion: a 2x
// slowdown on the des hot paths (with the frozen baseline untouched)
// doubles every gate ratio and must trip the 1.25x slack.
func TestGateFailsOnInjectedSlowdown(t *testing.T) {
	history := repoHistory(t)
	last := history[len(history)-1].Benchmarks
	current := make([]Result, len(last))
	copy(current, last)
	for i, r := range current {
		if strings.HasPrefix(r.Name, "des/") {
			current[i].NsPerOp *= 2
		}
	}
	violations := gateCheck(current, history, 1.25)
	if len(violations) == 0 {
		t.Fatal("2x hot-path slowdown passed the trend gate")
	}
	found := false
	for _, v := range violations {
		if strings.Contains(v, "des/schedule_fire ") || strings.Contains(v, "des/schedule_fire regressed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations do not name the schedule_fire hot path: %v", violations)
	}
}

// TestGateAllocRules pins the allocation half of the gate: a zero-alloc
// path that starts allocating fails regardless of timing, and alloc
// growth beyond the slack factor fails too.
func TestGateAllocRules(t *testing.T) {
	history := []historyReport{{
		Path: "synthetic",
		Benchmarks: []Result{
			{Name: "des/schedule_fire", NsPerOp: 100, AllocsPerOp: 0},
			{Name: "des_baseline/schedule_fire", NsPerOp: 200, AllocsPerOp: 2},
			{Name: "trace/sampled_span_tree", NsPerOp: 500, AllocsPerOp: 10},
		},
	}}
	current := []Result{
		{Name: "des/schedule_fire", NsPerOp: 100, AllocsPerOp: 1}, // was zero-alloc
		{Name: "des_baseline/schedule_fire", NsPerOp: 200, AllocsPerOp: 2},
		{Name: "trace/sampled_span_tree", NsPerOp: 500, AllocsPerOp: 20}, // 2x allocs
	}
	violations := gateCheck(current, history, 1.25)
	if len(violations) != 2 {
		t.Fatalf("want the zero-alloc and alloc-growth violations, got %v", violations)
	}
}

// TestGateIgnoresSlowMachines pins the gate's central design point:
// absolute nanoseconds scaled uniformly (a slower CI runner) keep every
// des/baseline ratio unchanged and must pass.
func TestGateIgnoresSlowMachines(t *testing.T) {
	history := repoHistory(t)
	last := history[len(history)-1].Benchmarks
	current := make([]Result, len(last))
	copy(current, last)
	for i := range current {
		current[i].NsPerOp *= 3.7 // everything slower, ratios identical
	}
	if v := gateCheck(current, history, 1.25); len(v) != 0 {
		t.Fatalf("uniformly slower machine failed the gate: %v", v)
	}
}

func TestBestOfKeepsMinNsAndMaxAllocs(t *testing.T) {
	passes := [][]Result{
		{
			{Name: "a", NsPerOp: 100, AllocsPerOp: 0, BytesPerOp: 0},
			{Name: "b", NsPerOp: 50, AllocsPerOp: 2, BytesPerOp: 64},
		},
		{
			{Name: "a", NsPerOp: 80, AllocsPerOp: 1, BytesPerOp: 16}, // faster pass, but it allocated
			{Name: "b", NsPerOp: 70, AllocsPerOp: 1, BytesPerOp: 32},
		},
		{
			{Name: "a", NsPerOp: 120, AllocsPerOp: 0, BytesPerOp: 0},
			// "b" missing from this pass: earlier values must survive
		},
	}
	best := bestOf(passes)
	idx := resultIndex(best)
	a, b := idx["a"], idx["b"]
	if a.NsPerOp != 80 {
		t.Errorf("a: want min ns 80, got %v", a.NsPerOp)
	}
	if a.AllocsPerOp != 1 || a.BytesPerOp != 16 {
		t.Errorf("a: want max allocs 1 / bytes 16 (an allocation seen in any pass is real), got %d/%d", a.AllocsPerOp, a.BytesPerOp)
	}
	if b.NsPerOp != 50 || b.AllocsPerOp != 2 || b.BytesPerOp != 64 {
		t.Errorf("b: want 50ns/2allocs/64B, got %v/%d/%d", b.NsPerOp, b.AllocsPerOp, b.BytesPerOp)
	}
}
