package main

import (
	"strings"
	"testing"
)

func names(rs []runner) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.name
	}
	return out
}

func TestSelectRunnersAll(t *testing.T) {
	for _, spec := range []string{"all", "ALL", " all "} {
		rs, err := selectRunners(spec)
		if err != nil {
			t.Fatalf("selectRunners(%q): %v", spec, err)
		}
		// "all" selects every runner except the heavy ones, which must be
		// requested by id.
		if len(rs) != len(runners)-len(heavyRunners) {
			t.Fatalf("selectRunners(%q) picked %d runners, want %d", spec, len(rs), len(runners)-len(heavyRunners))
		}
		for _, r := range rs {
			if heavyRunners[r.name] {
				t.Fatalf("selectRunners(%q) included heavy runner %q", spec, r.name)
			}
		}
	}
}

// TestSelectRunnersHeavyExplicit: heavy runners stay reachable by id.
func TestSelectRunnersHeavyExplicit(t *testing.T) {
	rs, err := selectRunners("scale")
	if err != nil {
		t.Fatalf("selectRunners(scale): %v", err)
	}
	if got := names(rs); len(got) != 1 || got[0] != "scale" {
		t.Fatalf("picked %v, want [scale]", got)
	}
	for name := range heavyRunners {
		found := false
		for _, r := range runners {
			if r.name == name {
				found = true
			}
		}
		if !found {
			t.Errorf("heavyRunners names %q, which is not in the runner table", name)
		}
	}
}

func TestParseScaleSweep(t *testing.T) {
	cfgs, err := parseScaleSweep(7)
	if err != nil {
		t.Fatalf("parseScaleSweep: %v", err)
	}
	// Defaults: 3 client tiers × 3 modes, ascending client order.
	if len(cfgs) != 9 {
		t.Fatalf("got %d sweep points, want 9", len(cfgs))
	}
	if cfgs[0].Clients != 10000 || cfgs[len(cfgs)-1].Clients != 1000000 {
		t.Fatalf("sweep not ascending: first=%d last=%d", cfgs[0].Clients, cfgs[len(cfgs)-1].Clients)
	}
	for _, cfg := range cfgs {
		if cfg.Seed != 7 || cfg.Cells <= 0 || cfg.Duration <= 0 {
			t.Fatalf("bad sweep point: %+v", cfg)
		}
	}
}

func TestParseScaleModeRejectsUnknown(t *testing.T) {
	if _, err := parseScaleMode("turbo"); err == nil {
		t.Fatal("unknown mode must be rejected")
	}
	for _, ok := range []string{"ec2", "EC2-AutoScaling", "dcm", " conscale "} {
		if _, err := parseScaleMode(ok); err != nil {
			t.Errorf("parseScaleMode(%q): %v", ok, err)
		}
	}
}

func TestSelectRunnersSubset(t *testing.T) {
	// Order follows the runner table, not the spec; duplicates collapse.
	rs, err := selectRunners("table1, fig3,fig3")
	if err != nil {
		t.Fatalf("selectRunners: %v", err)
	}
	got := names(rs)
	if len(got) != 2 || got[0] != "fig3" || got[1] != "table1" {
		t.Fatalf("picked %v, want [fig3 table1]", got)
	}
}

func TestSelectRunnersUnknown(t *testing.T) {
	_, err := selectRunners("fig3,figx,nope")
	if err == nil {
		t.Fatal("unknown ids must be rejected")
	}
	msg := err.Error()
	for _, want := range []string{"figx", "nope"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not name unknown id %q", msg, want)
		}
	}
	// The error must list every available id so the user can self-correct.
	for _, r := range runners {
		if !strings.Contains(msg, r.name) {
			t.Errorf("error %q does not list available id %q", msg, r.name)
		}
	}
}

func TestSelectRunnersEmpty(t *testing.T) {
	for _, spec := range []string{"", " , ,"} {
		if _, err := selectRunners(spec); err == nil {
			t.Errorf("selectRunners(%q) should fail", spec)
		}
	}
}

func TestRunnerNamesUniqueAndLower(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range runners {
		if r.name != strings.ToLower(r.name) {
			t.Errorf("runner id %q is not lower-case", r.name)
		}
		if seen[r.name] {
			t.Errorf("duplicate runner id %q", r.name)
		}
		seen[r.name] = true
	}
	if !seen["blame"] {
		t.Error("blame runner missing from table")
	}
}

func TestParseHypothesis(t *testing.T) {
	oldIDs, oldTraces, oldSeeds := *hypoIDs, *hypoTraces, *hypoSeeds
	defer func() { *hypoIDs, *hypoTraces, *hypoSeeds = oldIDs, oldTraces, oldSeeds }()

	cfg, err := parseHypothesis(9)
	if err != nil {
		t.Fatalf("parseHypothesis: %v", err)
	}
	if cfg.BaseSeed != 9 || len(cfg.IDs) != 0 || len(cfg.Traces) != 0 {
		t.Fatalf("defaults: %+v", cfg)
	}

	*hypoIDs = "twin-steady, DRIFT-CALM"
	*hypoTraces = "big-spike"
	cfg, err = parseHypothesis(1)
	if err != nil {
		t.Fatalf("parseHypothesis: %v", err)
	}
	if len(cfg.IDs) != 2 || cfg.IDs[1] != "drift-calm" || len(cfg.Traces) != 1 {
		t.Fatalf("parsed: %+v", cfg)
	}

	*hypoIDs = "nope"
	if _, err := parseHypothesis(1); err == nil {
		t.Error("unknown hypothesis id must be rejected")
	}
	*hypoIDs = ""
	*hypoTraces = "not-a-trace"
	if _, err := parseHypothesis(1); err == nil {
		t.Error("unknown trace must be rejected")
	}
	*hypoTraces = ""
	*hypoSeeds = -1
	if _, err := parseHypothesis(1); err == nil {
		t.Error("negative seed count must be rejected")
	}
}

func TestParseScaleSweepWorkers(t *testing.T) {
	old := *scaleWorkers
	defer func() { *scaleWorkers = old }()
	*scaleWorkers = "1, 2,4"
	cfgs, err := parseScaleSweep(1)
	if err != nil {
		t.Fatalf("parseScaleSweep: %v", err)
	}
	// 3 client tiers × 3 modes × 3 worker counts, workers innermost so a
	// scaling curve reads as consecutive rows of the same cell.
	if len(cfgs) != 27 {
		t.Fatalf("got %d sweep points, want 27", len(cfgs))
	}
	if cfgs[0].Workers != 1 || cfgs[1].Workers != 2 || cfgs[2].Workers != 4 {
		t.Fatalf("worker counts not innermost: %d,%d,%d", cfgs[0].Workers, cfgs[1].Workers, cfgs[2].Workers)
	}
	if cfgs[0].Clients != cfgs[2].Clients || cfgs[0].Mode != cfgs[2].Mode {
		t.Fatalf("curve rows differ beyond workers: %+v vs %+v", cfgs[0], cfgs[2])
	}
	for _, bad := range []string{"0", "-2", "x", " , "} {
		*scaleWorkers = bad
		if _, err := parseScaleSweep(1); err == nil {
			t.Errorf("-scale-workers=%q must be rejected", bad)
		}
	}
}
