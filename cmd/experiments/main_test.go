package main

import (
	"strings"
	"testing"
)

func names(rs []runner) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.name
	}
	return out
}

func TestSelectRunnersAll(t *testing.T) {
	for _, spec := range []string{"all", "ALL", " all "} {
		rs, err := selectRunners(spec)
		if err != nil {
			t.Fatalf("selectRunners(%q): %v", spec, err)
		}
		if len(rs) != len(runners) {
			t.Fatalf("selectRunners(%q) picked %d of %d runners", spec, len(rs), len(runners))
		}
	}
}

func TestSelectRunnersSubset(t *testing.T) {
	// Order follows the runner table, not the spec; duplicates collapse.
	rs, err := selectRunners("table1, fig3,fig3")
	if err != nil {
		t.Fatalf("selectRunners: %v", err)
	}
	got := names(rs)
	if len(got) != 2 || got[0] != "fig3" || got[1] != "table1" {
		t.Fatalf("picked %v, want [fig3 table1]", got)
	}
}

func TestSelectRunnersUnknown(t *testing.T) {
	_, err := selectRunners("fig3,figx,nope")
	if err == nil {
		t.Fatal("unknown ids must be rejected")
	}
	msg := err.Error()
	for _, want := range []string{"figx", "nope"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not name unknown id %q", msg, want)
		}
	}
	// The error must list every available id so the user can self-correct.
	for _, r := range runners {
		if !strings.Contains(msg, r.name) {
			t.Errorf("error %q does not list available id %q", msg, r.name)
		}
	}
}

func TestSelectRunnersEmpty(t *testing.T) {
	for _, spec := range []string{"", " , ,"} {
		if _, err := selectRunners(spec); err == nil {
			t.Errorf("selectRunners(%q) should fail", spec)
		}
	}
}

func TestRunnerNamesUniqueAndLower(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range runners {
		if r.name != strings.ToLower(r.name) {
			t.Errorf("runner id %q is not lower-case", r.name)
		}
		if seen[r.name] {
			t.Errorf("duplicate runner id %q", r.name)
		}
		seen[r.name] = true
	}
	if !seen["blame"] {
		t.Error("blame runner missing from table")
	}
}
