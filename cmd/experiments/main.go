// Command experiments regenerates the paper's tables and figures. Each
// experiment writes its dataset as CSV files under -out and prints a
// human-readable summary to stdout. Independent runs inside each
// experiment fan out over -parallel workers (default: GOMAXPROCS) with
// output byte-identical to a sequential execution.
//
// Usage:
//
//	experiments -run all -out results/
//	experiments -run all -parallel 8
//	experiments -run table1 -cpuprofile cpu.pprof
//	experiments -run fig3,fig7
//	experiments -run ablations
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"conscale/internal/experiment"
	"conscale/internal/trace"
	"conscale/internal/workload"
)

type runner struct {
	name string
	desc string
	fn   func(seed uint64, outDir string) error
}

var runners = []runner{
	{"fig1", "EC2-AutoScaling RT fluctuations under the Large Variations trace", runFig1},
	{"fig3", "Tomcat concurrency sweeps: 1-core / 2-core / enlarged dataset", runFig3},
	{"fig5", "MySQL fine-grained 50 ms series during the 1/1/1 -> 1/2/1 scaling", runFig5},
	{"fig6", "MySQL scatter correlation and rational concurrency range", runFig6},
	{"fig7", "Optimal-concurrency shifts: cores, dataset size, workload type", runFig7},
	{"fig9", "The six bursty workload traces", runFig9},
	{"fig10", "EC2-AutoScaling vs ConScale full timelines", runFig10},
	{"table1", "Tail latencies, EC2 vs ConScale, all six traces", runTable1},
	{"fig11", "DCM (stale profile) vs ConScale after a system-state change", runFig11},
	{"ablations", "A1 window size, A2 Qupper, A3 LB policy, A4 cooldown", runAblations},
	{"chaos", "Controller robustness under injected cloud faults", runChaos},
	{"blame", "Latency-blame attribution: traced EC2 vs DCM vs ConScale", runBlame},
	{"slo", "SLO burn-rate detection lead time: EC2 vs DCM vs ConScale", runSLO},
	{"report", "All-in-one reproduction report (Table I + Fig. 3 + Fig. 11)", runReport},
}

// selectRunners resolves a -run spec ("all" or a comma-separated id list)
// against the runner table, preserving table order and deduplicating.
// Unknown ids are an error that names every available id.
func selectRunners(spec string) ([]runner, error) {
	if strings.TrimSpace(strings.ToLower(spec)) == "all" {
		return runners, nil
	}
	want := map[string]bool{}
	for _, id := range strings.Split(spec, ",") {
		id = strings.TrimSpace(strings.ToLower(id))
		if id != "" {
			want[id] = true
		}
	}
	var picked []runner
	for _, r := range runners {
		if want[r.name] {
			picked = append(picked, r)
			delete(want, r.name)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for id := range want {
			unknown = append(unknown, id)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("unknown experiment id(s) %s; available: all, %s",
			strings.Join(unknown, ", "), availableIDs())
	}
	if len(picked) == 0 {
		return nil, fmt.Errorf("no experiment ids in %q; available: all, %s",
			spec, availableIDs())
	}
	return picked, nil
}

func availableIDs() string {
	ids := make([]string, len(runners))
	for i, r := range runners {
		ids[i] = r.name
	}
	return strings.Join(ids, ", ")
}

func main() {
	var (
		run        = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		out        = flag.String("out", "results", "output directory for CSV datasets")
		seed       = flag.Uint64("seed", 1, "experiment seed")
		list       = flag.Bool("list", false, "list available experiments and exit")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker fan-out for independent runs (1 = sequential)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list {
		for _, r := range runners {
			fmt.Printf("%-10s %s\n", r.name, r.desc)
		}
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	experiment.SetMaxWorkers(*parallel)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	picked, err := selectRunners(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	total := time.Now()
	for _, r := range picked {
		fmt.Printf("== %s: %s\n", r.name, r.desc)
		start := time.Now()
		if err := r.fn(*seed, *out); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Printf("   (%.1fs)\n\n", time.Since(start).Seconds())
	}
	fmt.Printf("total: %d experiments in %.1fs (workers=%d)\n",
		len(picked), time.Since(total).Seconds(), experiment.MaxWorkers())

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func writeCSV(outDir, name string, write func(f *os.File) error) error {
	path := filepath.Join(outDir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	fmt.Printf("   wrote %s\n", path)
	return nil
}

func runFig1(seed uint64, outDir string) error {
	res := experiment.Fig1(seed)
	fmt.Printf("   maxRT=%.0fms p99=%.0fms, %d scaling events\n",
		res.MaxRT()*1000, res.P99*1000, len(res.Events))
	return writeCSV(outDir, "fig1_ec2_timeline.csv", func(f *os.File) error {
		return experiment.WriteTimelineCSV(f, res)
	})
}

func runFig3(seed uint64, outDir string) error {
	res := experiment.Fig3(seed)
	fmt.Printf("   knees: 1-core=%d, 2-core=%d, 2-core enlarged=%d (paper: 10/20/15)\n",
		res.OneCore.Qlower, res.TwoCore.Qlower, res.TwoCoreEnlarged.Qlower)
	for _, p := range []struct {
		file  string
		sweep experiment.SweepResult
	}{
		{"fig3a_tomcat_1core.csv", res.OneCore},
		{"fig3b_tomcat_2core.csv", res.TwoCore},
		{"fig3c_tomcat_2core_enlarged.csv", res.TwoCoreEnlarged},
	} {
		if err := writeCSV(outDir, p.file, func(f *os.File) error {
			return experiment.WriteSweepCSV(f, p.sweep)
		}); err != nil {
			return err
		}
	}
	return nil
}

func runFig5(seed uint64, outDir string) error {
	res := experiment.Fig5(seed)
	fmt.Printf("   %d windows over [%.0fs, %.0fs)\n", len(res.Samples), float64(res.From), float64(res.To))
	return writeCSV(outDir, "fig5_mysql_finegrained.csv", func(f *os.File) error {
		return experiment.WriteSamplesCSV(f, res)
	})
}

func runFig6(seed uint64, outDir string) error {
	res := experiment.Fig6(seed)
	if res.OK {
		fmt.Printf("   rational range [%d, %d], plateau %.0f q/s, optimal setting %d\n",
			res.Estimate.Qlower, res.Estimate.Qupper, res.Estimate.PlateauTP, res.Estimate.Optimal())
	} else {
		fmt.Println("   estimate unavailable")
	}
	return writeCSV(outDir, "fig6_mysql_scatter.csv", func(f *os.File) error {
		if _, err := fmt.Fprintln(f, "concurrency,throughput_rps,rt_ms"); err != nil {
			return err
		}
		for i := range res.TPPoints {
			rt := 0.0
			if i < len(res.RTPoints) {
				rt = res.RTPoints[i].Value * 1000
			}
			if _, err := fmt.Fprintf(f, "%.2f,%.1f,%.2f\n",
				res.TPPoints[i].Concurrency, res.TPPoints[i].Value, rt); err != nil {
				return err
			}
		}
		return nil
	})
}

func runFig7(seed uint64, outDir string) error {
	panels := experiment.Fig7(seed)
	for i, p := range panels {
		fmt.Printf("   %s: Qlower=%d TPmax=%.0f\n", p.Label, p.Sweep.Qlower, p.Sweep.MaxTP)
		file := fmt.Sprintf("fig7%c_%s.csv", 'a'+i, sanitize(p.Label))
		if err := writeCSV(outDir, file, func(f *os.File) error {
			return experiment.WriteSweepCSV(f, p.Sweep)
		}); err != nil {
			return err
		}
	}
	return nil
}

func sanitize(label string) string {
	s := strings.ToLower(label)
	s = strings.NewReplacer(":", "", " ", "_", "(", "", ")", "", "/", "-").Replace(s)
	return s
}

func runFig9(_ uint64, outDir string) error {
	return writeCSV(outDir, "fig9_traces.csv", func(f *os.File) error {
		return experiment.WriteTraceCSV(f, experiment.Fig9())
	})
}

func runFig10(seed uint64, outDir string) error {
	res := experiment.Fig10(seed)
	experiment.RenderCompare(os.Stdout, res)
	if err := writeCSV(outDir, "fig10_ec2_timeline.csv", func(f *os.File) error {
		return experiment.WriteTimelineCSV(f, res.Baseline)
	}); err != nil {
		return err
	}
	return writeCSV(outDir, "fig10_conscale_timeline.csv", func(f *os.File) error {
		return experiment.WriteTimelineCSV(f, res.ConScale)
	})
}

func runFig11(seed uint64, outDir string) error {
	res := experiment.Fig11(seed)
	experiment.RenderCompare(os.Stdout, res)
	if err := writeCSV(outDir, "fig11_dcm_timeline.csv", func(f *os.File) error {
		return experiment.WriteTimelineCSV(f, res.Baseline)
	}); err != nil {
		return err
	}
	return writeCSV(outDir, "fig11_conscale_timeline.csv", func(f *os.File) error {
		return experiment.WriteTimelineCSV(f, res.ConScale)
	})
}

func runTable1(seed uint64, outDir string) error {
	rows := experiment.Table1(seed)
	experiment.RenderTable1(os.Stdout, rows)
	return writeCSV(outDir, "table1_tail_latency.csv", func(f *os.File) error {
		if _, err := fmt.Fprintln(f, "trace,ec2_p95_ms,ec2_p99_ms,conscale_p95_ms,conscale_p99_ms"); err != nil {
			return err
		}
		for _, r := range rows {
			if _, err := fmt.Fprintf(f, "%s,%.0f,%.0f,%.0f,%.0f\n",
				r.Trace, r.EC2P95*1000, r.EC2P99*1000, r.ConScaleP95*1000, r.ConScaleP99*1000); err != nil {
				return err
			}
		}
		return nil
	})
}

func runAblations(seed uint64, outDir string) error {
	studies := []struct {
		title string
		file  string
		rows  []experiment.AblationRow
	}{
		{"A1: SCT measurement window", "ablation_a1_window.csv", experiment.AblationWindowSize(seed)},
		{"A2: Qlower vs Qupper setting", "ablation_a2_qupper.csv", experiment.AblationQupper(seed)},
		{"A3: load-balancer policy", "ablation_a3_lb.csv", experiment.AblationLBPolicy(seed)},
		{"A4: scale-in cooldown", "ablation_a4_cooldown.csv", experiment.AblationCooldown(seed)},
		{"A5: horizontal vs vertical DB scaling", "ablation_a5_vertical.csv", experiment.AblationVertical(seed)},
		{"A6: optional Memcached cache tier", "ablation_a6_cache.csv", experiment.AblationCacheTier(seed)},
		{"A7: SLA trigger vs CPU threshold under a stale profile", "ablation_a7_sla.csv", experiment.AblationSLATrigger(seed)},
	}
	for _, st := range studies {
		experiment.RenderAblation(os.Stdout, st.title, st.rows)
		rows := st.rows
		if err := writeCSV(outDir, st.file, func(f *os.File) error {
			if _, err := fmt.Fprintln(f, "label,p95_ms,p99_ms,detail"); err != nil {
				return err
			}
			for _, r := range rows {
				if _, err := fmt.Fprintf(f, "%s,%.0f,%.0f,%s\n",
					r.Label, r.P95*1000, r.P99*1000, r.Detail); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

func runChaos(seed uint64, outDir string) error {
	rows := experiment.ChaosTable(seed, 0)
	experiment.RenderChaosTable(os.Stdout, rows)

	// Timeline overlays for the interference scenario, where the three
	// controllers separate most visibly.
	for _, res := range experiment.ChaosTimelines(seed, "interference", 0) {
		fmt.Println()
		experiment.RenderChaosTimeline(os.Stdout,
			fmt.Sprintf("chaos/interference: %s", res.Mode), res)
	}

	return writeCSV(outDir, "chaos_tail_latency.csv", func(f *os.File) error {
		if _, err := fmt.Fprintln(f, "scenario,controller,p95_ms,p99_ms,error_rate,goodput,fault_windows"); err != nil {
			return err
		}
		for _, r := range rows {
			if _, err := fmt.Fprintf(f, "%s,%s,%.0f,%.0f,%.4f,%d,%d\n",
				r.Scenario, r.Mode, r.P95*1000, r.P99*1000, r.ErrorRate, r.Goodput, r.Windows); err != nil {
				return err
			}
		}
		return nil
	})
}

func runBlame(seed uint64, outDir string) error {
	results := experiment.Blame(seed)
	experiment.RenderBlame(os.Stdout, results)

	for _, b := range results {
		mode := sanitize(b.Mode.String())
		if err := writeCSV(outDir, "blame_"+mode+".csv", func(f *os.File) error {
			return trace.WriteBlameCSV(f, b.Mode.String(), b.Rows)
		}); err != nil {
			return err
		}
		if err := writeCSV(outDir, "blame_audit_"+mode+".csv", func(f *os.File) error {
			return trace.WriteAuditCSV(f, b.Res.Audit)
		}); err != nil {
			return err
		}
		slowest := b.Res.Tracer.Slowest()
		if err := writeCSV(outDir, "blame_trace_"+mode+".json", func(f *os.File) error {
			return trace.WriteChromeTrace(f, slowest, b.Res.Audit)
		}); err != nil {
			return err
		}
		// Waterfall of the single slowest sampled request per controller.
		if len(slowest) > 0 {
			fmt.Printf("\n   slowest sampled request, %s (rt=%.0fms):\n", b.Mode, slowest[0].RT()*1000)
			if err := trace.WriteWaterfall(os.Stdout, slowest[0]); err != nil {
				return err
			}
		}
	}
	fmt.Printf("\n%s\n", trace.WaterfallLegend)
	return nil
}

func runSLO(seed uint64, outDir string) error {
	runs := experiment.SLODetection(seed)
	experiment.RenderSLO(os.Stdout, runs)

	if err := writeCSV(outDir, "slo_leadtime.csv", func(f *os.File) error {
		if _, err := fmt.Fprintln(f, "trace,controller,episodes,alerts,detected,true_positives,precision,recall,lead_count,mean_lead_s,min_lead_s,max_lead_s,slo_only"); err != nil {
			return err
		}
		for _, r := range runs {
			lead, lo, hi := "", "", ""
			if r.Row.LeadCount > 0 {
				lead = fmt.Sprintf("%.1f", r.Row.MeanLead)
				lo = fmt.Sprintf("%.1f", r.Row.MinLead)
				hi = fmt.Sprintf("%.1f", r.Row.MaxLead)
			}
			if _, err := fmt.Fprintf(f, "%s,%s,%d,%d,%d,%d,%.3f,%.3f,%d,%s,%s,%s,%d\n",
				r.Trace, r.Mode, r.Row.Episodes, r.Row.Alerts, r.Row.Detected,
				r.Row.TruePositives, r.Row.Precision, r.Row.Recall,
				r.Row.LeadCount, lead, lo, hi, r.Row.SLOOnly); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	// Showcase scrape timelines for the headline trace — one OpenMetrics
	// file per controller, replayable into any Prometheus-compatible tool.
	for _, r := range runs {
		if r.Trace != workload.LargeVariations || r.Res.Scraper == nil {
			continue
		}
		file := "slo_scrape_" + sanitize(r.Mode.String()) + ".om"
		if err := writeCSV(outDir, file, func(f *os.File) error {
			return r.Res.Scraper.WriteOpenMetrics(f)
		}); err != nil {
			return err
		}
	}
	return nil
}

func runReport(seed uint64, outDir string) error {
	rep := experiment.BuildReport(seed)
	return writeCSV(outDir, "REPORT.md", func(f *os.File) error {
		return rep.WriteMarkdown(f)
	})
}
