// Command experiments regenerates the paper's tables and figures. Each
// experiment writes its dataset as CSV files under -out and prints a
// human-readable summary to stdout. Independent runs inside each
// experiment fan out over -parallel workers (default: GOMAXPROCS) with
// output byte-identical to a sequential execution.
//
// Usage:
//
//	experiments -run all -out results/
//	experiments -run all -parallel 8
//	experiments -run table1 -cpuprofile cpu.pprof
//	experiments -run fig3,fig7
//	experiments -run ablations
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"conscale/internal/admission"
	"conscale/internal/controller"
	"conscale/internal/des"
	"conscale/internal/experiment"
	"conscale/internal/forensics"
	"conscale/internal/scaling"
	"conscale/internal/trace"
	"conscale/internal/twin"
	"conscale/internal/workload"
)

type runner struct {
	name string
	desc string
	fn   func(seed uint64, outDir string) error
}

var runners = []runner{
	{"fig1", "EC2-AutoScaling RT fluctuations under the Large Variations trace", runFig1},
	{"fig3", "Tomcat concurrency sweeps: 1-core / 2-core / enlarged dataset", runFig3},
	{"fig5", "MySQL fine-grained 50 ms series during the 1/1/1 -> 1/2/1 scaling", runFig5},
	{"fig6", "MySQL scatter correlation and rational concurrency range", runFig6},
	{"fig7", "Optimal-concurrency shifts: cores, dataset size, workload type", runFig7},
	{"fig9", "The six bursty workload traces", runFig9},
	{"fig10", "EC2-AutoScaling vs ConScale full timelines", runFig10},
	{"table1", "Tail latencies, EC2 vs ConScale, all six traces", runTable1},
	{"fig11", "DCM (stale profile) vs ConScale after a system-state change", runFig11},
	{"ablations", "A1 window size, A2 Qupper, A3 LB policy, A4 cooldown", runAblations},
	{"chaos", "Controller robustness under injected cloud faults", runChaos},
	{"blame", "Latency-blame attribution: traced EC2 vs DCM vs ConScale", runBlame},
	{"slo", "SLO burn-rate detection lead time: EC2 vs DCM vs ConScale", runSLO},
	{"report", "All-in-one reproduction report (Table I + Fig. 3 + Fig. 11)", runReport},
	{"scale", "Million-client scale mode: streaming population over striped cells", runScale},
	{"tournament", "Full-factorial controller tournament: every controller × trace × tier", runTournament},
	{"episodes", "Fluctuation forensics: episode detection + causal attribution per controller", runEpisodes},
	{"hypothesis", "Declared-hypothesis validation: DES≡MVA steady-state, calm-regime drift, blame conservation, SCT tail dominance", runHypothesis},
	{"frontier", "Admission frontier: admission policy × controller × trace on the p99-vs-goodput plane", runFrontier},
}

// heavyRunners are excluded from `-run all` and must be requested by id:
// the scale sweep's 1M-client tier, the tournament and frontier full
// factorials, and the hypothesis sweeps multiply the whole-suite wall
// time.
var heavyRunners = map[string]bool{"scale": true, "tournament": true, "episodes": true, "hypothesis": true, "frontier": true}

// selectRunners resolves a -run spec ("all" or a comma-separated id list)
// against the runner table, preserving table order and deduplicating.
// Unknown ids are an error that names every available id. "all" selects
// every runner except the heavy ones (currently `scale`), which must be
// requested explicitly.
func selectRunners(spec string) ([]runner, error) {
	if strings.TrimSpace(strings.ToLower(spec)) == "all" {
		var picked []runner
		for _, r := range runners {
			if !heavyRunners[r.name] {
				picked = append(picked, r)
			}
		}
		return picked, nil
	}
	want := map[string]bool{}
	for _, id := range strings.Split(spec, ",") {
		id = strings.TrimSpace(strings.ToLower(id))
		if id != "" {
			want[id] = true
		}
	}
	var picked []runner
	for _, r := range runners {
		if want[r.name] {
			picked = append(picked, r)
			delete(want, r.name)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for id := range want {
			unknown = append(unknown, id)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("unknown experiment id(s) %s; available: all, %s",
			strings.Join(unknown, ", "), availableIDs())
	}
	if len(picked) == 0 {
		return nil, fmt.Errorf("no experiment ids in %q; available: all, %s",
			spec, availableIDs())
	}
	return picked, nil
}

func availableIDs() string {
	ids := make([]string, len(runners))
	for i, r := range runners {
		ids[i] = r.name
	}
	return strings.Join(ids, ", ")
}

// Scale-mode sweep flags (the `-run scale` experiment). Declared at
// package level so the runner function can read them after flag.Parse.
var (
	scaleClients  = flag.String("scale-clients", "10000,100000,1000000", "scale sweep: comma-separated peak client counts")
	scaleModes    = flag.String("scale-modes", "ec2,dcm,conscale", "scale sweep: comma-separated frameworks")
	scaleCells    = flag.Int("scale-cells", 16, "scale sweep: independent n-tier cells per run")
	scaleDuration = flag.Float64("scale-duration", 120, "scale sweep: simulated seconds per run")
	scaleSeq      = flag.Bool("scale-seq", false, "scale sweep: force the sequential striper fallback")
	scaleWorkers  = flag.String("scale-workers", "", "scale sweep: comma-separated striper worker counts, repeating each sweep point per count (e.g. 1,2,4,8 records a scaling curve; empty = one auto-sized run)")
)

// Tournament flags (the `-run tournament` experiment).
var (
	tournControllers = flag.String("tournament-controllers", "", "tournament: comma-separated controller names (default: every registered controller)")
	tournTraces      = flag.String("tournament-traces", "", "tournament: comma-separated trace names (default: all six)")
	tournTiers       = flag.String("tournament-tiers", "2500,7500", "tournament: comma-separated peak client counts")
	tournDuration    = flag.Float64("tournament-duration", 300, "tournament: simulated seconds per cell")
)

// Hypothesis-validation flags (the `-run hypothesis` experiment).
var (
	hypoIDs      = flag.String("hypothesis-ids", "", "hypothesis: comma-separated hypothesis ids (default: all declared)")
	hypoSeeds    = flag.Int("hypothesis-seeds", 0, "hypothesis: seeds per cell (default 5)")
	hypoDuration = flag.Float64("hypothesis-duration", 0, "hypothesis: steady-cell simulated seconds (default 300)")
	hypoUsers    = flag.Int("hypothesis-users", 0, "hypothesis: trace-sweep peak client population (default 7500)")
	hypoTraces   = flag.String("hypothesis-traces", "", "hypothesis: comma-separated sweep traces (default: all six)")
)

// Episode-forensics flags (the `-run episodes` experiment).
var (
	epControllers = flag.String("episodes-controllers", "", "episodes: comma-separated controller names (default: ec2,dcm,conscale,target-tracking-sct)")
	epTraces      = flag.String("episodes-traces", "", "episodes: comma-separated trace names (default: all six)")
	epUsers       = flag.Int("episodes-users", 0, "episodes: peak client population per cell (default 7500)")
	epDuration    = flag.Float64("episodes-duration", 0, "episodes: simulated seconds per cell (default 720)")
	epChaos       = flag.Bool("episodes-chaos", true, "episodes: arm the deterministic fault overlay (the attribution score's ground truth)")
)

// Admission-frontier flags (the `-run frontier` experiment). Policy
// specs carry commas ("codel:target=250ms,interval=1s"), so the policy
// list is semicolon-separated.
var (
	frControllers = flag.String("frontier-controllers", "", "frontier: comma-separated controller names (default: ec2,dcm,conscale,target-tracking-sct)")
	frPolicies    = flag.String("frontier-policies", "", "frontier: semicolon-separated admission policy specs (default: always; queue-cap:cap=300; codel:target=100ms,interval=200ms; priority:cap=300,browse=75)")
	frTraces      = flag.String("frontier-traces", "", "frontier: comma-separated trace names (default: all six)")
	frClients     = flag.Int("frontier-clients", 0, "frontier: peak client count per cell (default 100000)")
	frDuration    = flag.Float64("frontier-duration", 0, "frontier: simulated seconds per run (default 120)")
	frThink       = flag.Float64("frontier-think", 0, "frontier: mean client think time in seconds (default 3, the paper's evaluation setting)")
	frSeq         = flag.Bool("frontier-seq", false, "frontier: force the sequential striper fallback")
)

func main() {
	var (
		run        = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		out        = flag.String("out", "results", "output directory for CSV datasets")
		seed       = flag.Uint64("seed", 1, "experiment seed")
		list       = flag.Bool("list", false, "list available experiments and exit")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker fan-out for independent runs (1 = sequential)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		check      = flag.Bool("check", false, "validate flags and -run ids, then exit without running (doc-drift guard)")
	)
	flag.Parse()

	if *check {
		if _, err := selectRunners(*run); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if _, err := parseScaleSweep(*seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if _, err := parseTournament(*seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if _, err := parseEpisodes(*seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if _, err := parseHypothesis(*seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if _, err := parseFrontier(*seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Println("ok")
		return
	}

	if *list {
		for _, r := range runners {
			fmt.Printf("%-10s %s\n", r.name, r.desc)
		}
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	experiment.SetMaxWorkers(*parallel)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	picked, err := selectRunners(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	total := time.Now()
	for _, r := range picked {
		fmt.Printf("== %s: %s\n", r.name, r.desc)
		start := time.Now()
		if err := r.fn(*seed, *out); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Printf("   (%.1fs)\n\n", time.Since(start).Seconds())
	}
	fmt.Printf("total: %d experiments in %.1fs (workers=%d)\n",
		len(picked), time.Since(total).Seconds(), experiment.MaxWorkers())

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func writeCSV(outDir, name string, write func(f *os.File) error) error {
	path := filepath.Join(outDir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	fmt.Printf("   wrote %s\n", path)
	return nil
}

func runFig1(seed uint64, outDir string) error {
	res := experiment.Fig1(seed)
	fmt.Printf("   maxRT=%.0fms p99=%.0fms, %d scaling events\n",
		res.MaxRT()*1000, res.P99*1000, len(res.Events))
	return writeCSV(outDir, "fig1_ec2_timeline.csv", func(f *os.File) error {
		return experiment.WriteTimelineCSV(f, res)
	})
}

func runFig3(seed uint64, outDir string) error {
	res := experiment.Fig3(seed)
	fmt.Printf("   knees: 1-core=%d, 2-core=%d, 2-core enlarged=%d (paper: 10/20/15)\n",
		res.OneCore.Qlower, res.TwoCore.Qlower, res.TwoCoreEnlarged.Qlower)
	for _, p := range []struct {
		file  string
		sweep experiment.SweepResult
	}{
		{"fig3a_tomcat_1core.csv", res.OneCore},
		{"fig3b_tomcat_2core.csv", res.TwoCore},
		{"fig3c_tomcat_2core_enlarged.csv", res.TwoCoreEnlarged},
	} {
		if err := writeCSV(outDir, p.file, func(f *os.File) error {
			return experiment.WriteSweepCSV(f, p.sweep)
		}); err != nil {
			return err
		}
	}
	return nil
}

func runFig5(seed uint64, outDir string) error {
	res := experiment.Fig5(seed)
	fmt.Printf("   %d windows over [%.0fs, %.0fs)\n", len(res.Samples), float64(res.From), float64(res.To))
	return writeCSV(outDir, "fig5_mysql_finegrained.csv", func(f *os.File) error {
		return experiment.WriteSamplesCSV(f, res)
	})
}

func runFig6(seed uint64, outDir string) error {
	res := experiment.Fig6(seed)
	if res.OK {
		fmt.Printf("   rational range [%d, %d], plateau %.0f q/s, optimal setting %d\n",
			res.Estimate.Qlower, res.Estimate.Qupper, res.Estimate.PlateauTP, res.Estimate.Optimal())
	} else {
		fmt.Println("   estimate unavailable")
	}
	return writeCSV(outDir, "fig6_mysql_scatter.csv", func(f *os.File) error {
		if _, err := fmt.Fprintln(f, "concurrency,throughput_rps,rt_ms"); err != nil {
			return err
		}
		for i := range res.TPPoints {
			rt := 0.0
			if i < len(res.RTPoints) {
				rt = res.RTPoints[i].Value * 1000
			}
			if _, err := fmt.Fprintf(f, "%.2f,%.1f,%.2f\n",
				res.TPPoints[i].Concurrency, res.TPPoints[i].Value, rt); err != nil {
				return err
			}
		}
		return nil
	})
}

func runFig7(seed uint64, outDir string) error {
	panels := experiment.Fig7(seed)
	for i, p := range panels {
		fmt.Printf("   %s: Qlower=%d TPmax=%.0f\n", p.Label, p.Sweep.Qlower, p.Sweep.MaxTP)
		file := fmt.Sprintf("fig7%c_%s.csv", 'a'+i, sanitize(p.Label))
		if err := writeCSV(outDir, file, func(f *os.File) error {
			return experiment.WriteSweepCSV(f, p.Sweep)
		}); err != nil {
			return err
		}
	}
	return nil
}

func sanitize(label string) string {
	s := strings.ToLower(label)
	s = strings.NewReplacer(":", "", " ", "_", "(", "", ")", "", "/", "-").Replace(s)
	return s
}

func runFig9(_ uint64, outDir string) error {
	return writeCSV(outDir, "fig9_traces.csv", func(f *os.File) error {
		return experiment.WriteTraceCSV(f, experiment.Fig9())
	})
}

func runFig10(seed uint64, outDir string) error {
	res := experiment.Fig10(seed)
	experiment.RenderCompare(os.Stdout, res)
	if err := writeCSV(outDir, "fig10_ec2_timeline.csv", func(f *os.File) error {
		return experiment.WriteTimelineCSV(f, res.Baseline)
	}); err != nil {
		return err
	}
	return writeCSV(outDir, "fig10_conscale_timeline.csv", func(f *os.File) error {
		return experiment.WriteTimelineCSV(f, res.ConScale)
	})
}

func runFig11(seed uint64, outDir string) error {
	res := experiment.Fig11(seed)
	experiment.RenderCompare(os.Stdout, res)
	if err := writeCSV(outDir, "fig11_dcm_timeline.csv", func(f *os.File) error {
		return experiment.WriteTimelineCSV(f, res.Baseline)
	}); err != nil {
		return err
	}
	return writeCSV(outDir, "fig11_conscale_timeline.csv", func(f *os.File) error {
		return experiment.WriteTimelineCSV(f, res.ConScale)
	})
}

func runTable1(seed uint64, outDir string) error {
	rows := experiment.Table1(seed)
	experiment.RenderTable1(os.Stdout, rows)
	return writeCSV(outDir, "table1_tail_latency.csv", func(f *os.File) error {
		if _, err := fmt.Fprintln(f, "trace,ec2_p95_ms,ec2_p99_ms,conscale_p95_ms,conscale_p99_ms"); err != nil {
			return err
		}
		for _, r := range rows {
			if _, err := fmt.Fprintf(f, "%s,%.0f,%.0f,%.0f,%.0f\n",
				r.Trace, r.EC2P95*1000, r.EC2P99*1000, r.ConScaleP95*1000, r.ConScaleP99*1000); err != nil {
				return err
			}
		}
		return nil
	})
}

func runAblations(seed uint64, outDir string) error {
	studies := []struct {
		title string
		file  string
		rows  []experiment.AblationRow
	}{
		{"A1: SCT measurement window", "ablation_a1_window.csv", experiment.AblationWindowSize(seed)},
		{"A2: Qlower vs Qupper setting", "ablation_a2_qupper.csv", experiment.AblationQupper(seed)},
		{"A3: load-balancer policy", "ablation_a3_lb.csv", experiment.AblationLBPolicy(seed)},
		{"A4: scale-in cooldown", "ablation_a4_cooldown.csv", experiment.AblationCooldown(seed)},
		{"A5: horizontal vs vertical DB scaling", "ablation_a5_vertical.csv", experiment.AblationVertical(seed)},
		{"A6: optional Memcached cache tier", "ablation_a6_cache.csv", experiment.AblationCacheTier(seed)},
		{"A7: SLA trigger vs CPU threshold under a stale profile", "ablation_a7_sla.csv", experiment.AblationSLATrigger(seed)},
	}
	for _, st := range studies {
		experiment.RenderAblation(os.Stdout, st.title, st.rows)
		rows := st.rows
		if err := writeCSV(outDir, st.file, func(f *os.File) error {
			if _, err := fmt.Fprintln(f, "label,p95_ms,p99_ms,detail"); err != nil {
				return err
			}
			for _, r := range rows {
				if _, err := fmt.Fprintf(f, "%s,%.0f,%.0f,%s\n",
					r.Label, r.P95*1000, r.P99*1000, r.Detail); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

func runChaos(seed uint64, outDir string) error {
	rows := experiment.ChaosTable(seed, 0)
	experiment.RenderChaosTable(os.Stdout, rows)

	// Timeline overlays for the interference scenario, where the three
	// controllers separate most visibly.
	for _, res := range experiment.ChaosTimelines(seed, "interference", 0) {
		fmt.Println()
		experiment.RenderChaosTimeline(os.Stdout,
			fmt.Sprintf("chaos/interference: %s", res.Mode), res)
	}

	return writeCSV(outDir, "chaos_tail_latency.csv", func(f *os.File) error {
		if _, err := fmt.Fprintln(f, "scenario,controller,p95_ms,p99_ms,error_rate,goodput,fault_windows"); err != nil {
			return err
		}
		for _, r := range rows {
			if _, err := fmt.Fprintf(f, "%s,%s,%.0f,%.0f,%.4f,%d,%d\n",
				r.Scenario, r.Mode, r.P95*1000, r.P99*1000, r.ErrorRate, r.Goodput, r.Windows); err != nil {
				return err
			}
		}
		return nil
	})
}

func runBlame(seed uint64, outDir string) error {
	results := experiment.Blame(seed)
	experiment.RenderBlame(os.Stdout, results)

	for _, b := range results {
		mode := sanitize(b.Mode.String())
		if err := writeCSV(outDir, "blame_"+mode+".csv", func(f *os.File) error {
			return trace.WriteBlameCSV(f, b.Mode.String(), b.Rows)
		}); err != nil {
			return err
		}
		if err := writeCSV(outDir, "blame_audit_"+mode+".csv", func(f *os.File) error {
			return trace.WriteAuditCSV(f, b.Res.Audit)
		}); err != nil {
			return err
		}
		slowest := b.Res.Tracer.Slowest()
		if err := writeCSV(outDir, "blame_trace_"+mode+".json", func(f *os.File) error {
			return trace.WriteChromeTrace(f, slowest, b.Res.Audit)
		}); err != nil {
			return err
		}
		// Waterfall of the single slowest sampled request per controller.
		if len(slowest) > 0 {
			fmt.Printf("\n   slowest sampled request, %s (rt=%.0fms):\n", b.Mode, slowest[0].RT()*1000)
			if err := trace.WriteWaterfall(os.Stdout, slowest[0]); err != nil {
				return err
			}
		}
	}
	fmt.Printf("\n%s\n", trace.WaterfallLegend)
	return nil
}

func runSLO(seed uint64, outDir string) error {
	runs := experiment.SLODetection(seed)
	experiment.RenderSLO(os.Stdout, runs)

	if err := writeCSV(outDir, "slo_leadtime.csv", func(f *os.File) error {
		if _, err := fmt.Fprintln(f, "trace,controller,episodes,alerts,detected,true_positives,precision,recall,lead_count,mean_lead_s,min_lead_s,max_lead_s,slo_only"); err != nil {
			return err
		}
		for _, r := range runs {
			lead, lo, hi := "", "", ""
			if r.Row.LeadCount > 0 {
				lead = fmt.Sprintf("%.1f", r.Row.MeanLead)
				lo = fmt.Sprintf("%.1f", r.Row.MinLead)
				hi = fmt.Sprintf("%.1f", r.Row.MaxLead)
			}
			if _, err := fmt.Fprintf(f, "%s,%s,%d,%d,%d,%d,%.3f,%.3f,%d,%s,%s,%s,%d\n",
				r.Trace, r.Mode, r.Row.Episodes, r.Row.Alerts, r.Row.Detected,
				r.Row.TruePositives, r.Row.Precision, r.Row.Recall,
				r.Row.LeadCount, lead, lo, hi, r.Row.SLOOnly); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	// Showcase scrape timelines for the headline trace — one OpenMetrics
	// file per controller, replayable into any Prometheus-compatible tool.
	for _, r := range runs {
		if r.Trace != workload.LargeVariations || r.Res.Scraper == nil {
			continue
		}
		file := "slo_scrape_" + sanitize(r.Mode.String()) + ".om"
		if err := writeCSV(outDir, file, func(f *os.File) error {
			return r.Res.Scraper.WriteOpenMetrics(f)
		}); err != nil {
			return err
		}
	}
	return nil
}

func runReport(seed uint64, outDir string) error {
	rep := experiment.BuildReport(seed)
	return writeCSV(outDir, "REPORT.md", func(f *os.File) error {
		return rep.WriteMarkdown(f)
	})
}

// parseScaleMode resolves a -scale-modes token.
func parseScaleMode(name string) (scaling.Mode, error) {
	switch strings.TrimSpace(strings.ToLower(name)) {
	case "ec2", "ec2-autoscaling":
		return scaling.EC2, nil
	case "dcm":
		return scaling.DCM, nil
	case "conscale":
		return scaling.ConScale, nil
	}
	return 0, fmt.Errorf("unknown scale mode %q; available: ec2, dcm, conscale", name)
}

// parseScaleSweep expands the scale flags into the run configurations of
// the sweep, clients ascending × modes in flag order.
func parseScaleSweep(seed uint64) ([]experiment.ScaleConfig, error) {
	var clients []int
	for _, tok := range strings.Split(*scaleClients, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		n, err := strconv.Atoi(tok)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -scale-clients entry %q", tok)
		}
		clients = append(clients, n)
	}
	if len(clients) == 0 {
		return nil, fmt.Errorf("-scale-clients is empty")
	}
	sort.Ints(clients)
	var modes []scaling.Mode
	for _, tok := range strings.Split(*scaleModes, ",") {
		if strings.TrimSpace(tok) == "" {
			continue
		}
		m, err := parseScaleMode(tok)
		if err != nil {
			return nil, err
		}
		modes = append(modes, m)
	}
	if len(modes) == 0 {
		return nil, fmt.Errorf("-scale-modes is empty")
	}
	if *scaleCells <= 0 {
		return nil, fmt.Errorf("-scale-cells must be positive")
	}
	if *scaleDuration <= 0 {
		return nil, fmt.Errorf("-scale-duration must be positive")
	}
	// A worker count of 0 means "auto": sized from Parallel inside
	// RunScale. Explicit counts repeat every sweep point, innermost, so a
	// scaling curve reads as consecutive rows of the same cell.
	workerCounts := []int{0}
	if s := strings.TrimSpace(*scaleWorkers); s != "" {
		workerCounts = nil
		for _, tok := range strings.Split(s, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			n, err := strconv.Atoi(tok)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("bad -scale-workers entry %q", tok)
			}
			workerCounts = append(workerCounts, n)
		}
		if len(workerCounts) == 0 {
			return nil, fmt.Errorf("-scale-workers is empty")
		}
	}
	var cfgs []experiment.ScaleConfig
	for _, n := range clients {
		for _, m := range modes {
			for _, w := range workerCounts {
				cfg := experiment.DefaultScaleConfig(m, n)
				cfg.Seed = seed
				cfg.Cells = *scaleCells
				cfg.Duration = des.Time(*scaleDuration) * des.Second
				cfg.Parallel = !*scaleSeq
				cfg.Workers = w
				cfg.Telemetry = true
				cfgs = append(cfgs, cfg)
			}
		}
	}
	return cfgs, nil
}

// runScale executes the {clients} × {modes} × {workers} sweep, prints
// the summary table, and writes scale_summary.csv, BENCH_7.json (schema
// conscale-bench/7, scale section), and the largest ConScale run's
// client timeline.
func runScale(seed uint64, outDir string) error {
	cfgs, err := parseScaleSweep(seed)
	if err != nil {
		return err
	}
	rows := make([]experiment.ScaleRow, 0, len(cfgs))
	var biggest *experiment.ScaleResult
	for _, cfg := range cfgs {
		workers := "auto"
		if cfg.Workers > 0 {
			workers = strconv.Itoa(cfg.Workers)
		}
		fmt.Printf("   %s × %d clients (%d cells, %.0fs, workers=%s)...\n",
			cfg.Mode, cfg.Clients, cfg.Cells, float64(cfg.Duration), workers)
		res := experiment.RunScale(cfg)
		fmt.Printf("     wall=%.1fs events=%d (%.2fM ev/s) heap=%.1fMB p99=%.0fms err=%.4f\n",
			res.WallSec, res.Events, res.EventsPerSec/1e6,
			float64(res.PeakHeapBytes)/(1<<20), res.P99*1000, res.ErrorRate)
		rows = append(rows, res.Row())
		if cfg.Mode == scaling.ConScale && (biggest == nil || res.Clients > biggest.Clients) {
			biggest = res
		}
	}
	fmt.Println()
	experiment.RenderScale(os.Stdout, rows)

	if err := writeCSV(outDir, "scale_summary.csv", func(f *os.File) error {
		if _, err := fmt.Fprintln(f, "mode,clients,cells,workers,duration_s,wall_s,events,events_per_s,peak_heap_mb,requests,goodput,error_rate,p50_ms,p95_ms,p99_ms,vms,scale_actions"); err != nil {
			return err
		}
		for _, r := range rows {
			if _, err := fmt.Fprintf(f, "%s,%d,%d,%d,%.0f,%.2f,%d,%.0f,%.1f,%d,%d,%.4f,%.1f,%.1f,%.1f,%d,%d\n",
				r.Mode, r.Clients, r.Cells, r.Workers, r.DurationSec, r.WallSec, r.Events,
				r.EventsPerSec, r.PeakHeapMB, r.Requests, r.Goodput, r.ErrorRate,
				r.P50Ms, r.P95Ms, r.P99Ms, r.VMs, r.ScaleActions); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if biggest != nil {
		if err := writeCSV(outDir, fmt.Sprintf("scale_timeline_conscale_%d.csv", biggest.Clients), func(f *os.File) error {
			experiment.WriteScaleTimelineCSV(f, biggest)
			return nil
		}); err != nil {
			return err
		}
	}
	return writeCSV(outDir, "BENCH_7.json", func(f *os.File) error {
		return experiment.WriteScaleReport(f, rows)
	})
}

// parseTournament expands the tournament flags into the factorial
// configuration, validating controller and trace names up front so a
// typo fails before hours of simulation.
func parseTournament(seed uint64) (experiment.TournamentConfig, error) {
	cfg := experiment.DefaultTournamentConfig()
	cfg.Seed = seed
	if s := strings.TrimSpace(*tournControllers); s != "" {
		cfg.Controllers = nil
		for _, tok := range strings.Split(s, ",") {
			tok = strings.TrimSpace(strings.ToLower(tok))
			if tok == "" {
				continue
			}
			if _, err := controller.New(tok, controller.Options{}); err != nil {
				return cfg, err
			}
			cfg.Controllers = append(cfg.Controllers, tok)
		}
		if len(cfg.Controllers) == 0 {
			return cfg, fmt.Errorf("-tournament-controllers is empty")
		}
	}
	if s := strings.TrimSpace(*tournTraces); s != "" {
		cfg.Traces = nil
		for _, tok := range strings.Split(s, ",") {
			tok = strings.TrimSpace(strings.ToLower(tok))
			if tok == "" {
				continue
			}
			known := false
			for _, n := range workload.Names() {
				if tok == n {
					known = true
					break
				}
			}
			if !known {
				return cfg, fmt.Errorf("unknown trace %q; available: %s",
					tok, strings.Join(workload.Names(), ", "))
			}
			cfg.Traces = append(cfg.Traces, tok)
		}
		if len(cfg.Traces) == 0 {
			return cfg, fmt.Errorf("-tournament-traces is empty")
		}
	}
	if s := strings.TrimSpace(*tournTiers); s != "" {
		cfg.Tiers = nil
		for _, tok := range strings.Split(s, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			n, err := strconv.Atoi(tok)
			if err != nil || n <= 0 {
				return cfg, fmt.Errorf("bad -tournament-tiers entry %q", tok)
			}
			cfg.Tiers = append(cfg.Tiers, n)
		}
		sort.Ints(cfg.Tiers)
	}
	if len(cfg.Tiers) == 0 {
		return cfg, fmt.Errorf("-tournament-tiers is empty")
	}
	if *tournDuration <= 0 {
		return cfg, fmt.Errorf("-tournament-duration must be positive")
	}
	cfg.Duration = des.Time(*tournDuration) * des.Second
	return cfg, nil
}

// runTournament executes the factorial, prints the ranked standings, and
// writes tournament_summary.csv plus BENCH_6.json (schema
// conscale-bench/6, tournament section).
func runTournament(seed uint64, outDir string) error {
	cfg, err := parseTournament(seed)
	if err != nil {
		return err
	}
	fmt.Printf("   %d controllers × %d traces × %d tiers = %d cells (%.0fs each)\n",
		len(cfg.Controllers), len(cfg.Traces), len(cfg.Tiers),
		len(cfg.Controllers)*len(cfg.Traces)*len(cfg.Tiers), float64(cfg.Duration))
	res := experiment.RunTournament(cfg)
	experiment.RenderTournament(os.Stdout, res)

	if err := writeCSV(outDir, "tournament_summary.csv", func(f *os.File) error {
		experiment.WriteTournamentCSV(f, res)
		return nil
	}); err != nil {
		return err
	}
	return writeCSV(outDir, "BENCH_6.json", func(f *os.File) error {
		return experiment.WriteTournamentReport(f, res)
	})
}

// parseFrontier expands the frontier flags into the factorial
// configuration, validating controller names, trace names, and
// admission policy specs up front so a typo fails before hours of
// simulation.
func parseFrontier(seed uint64) (experiment.FrontierConfig, error) {
	cfg := experiment.DefaultFrontierConfig()
	cfg.Seed = seed
	if s := strings.TrimSpace(*frControllers); s != "" {
		cfg.Controllers = nil
		for _, tok := range strings.Split(s, ",") {
			tok = strings.TrimSpace(strings.ToLower(tok))
			if tok == "" {
				continue
			}
			if _, err := controller.New(tok, controller.Options{}); err != nil {
				return cfg, err
			}
			cfg.Controllers = append(cfg.Controllers, tok)
		}
		if len(cfg.Controllers) == 0 {
			return cfg, fmt.Errorf("-frontier-controllers is empty")
		}
	}
	if s := strings.TrimSpace(*frPolicies); s != "" {
		cfg.Policies = nil
		hasAlways := false
		for _, tok := range strings.Split(s, ";") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			acfg, err := admission.Parse(tok)
			if err != nil {
				return cfg, err
			}
			if _, err := admission.New(acfg); err != nil {
				return cfg, err
			}
			if acfg.Policy == admission.Always {
				hasAlways = true
			}
			cfg.Policies = append(cfg.Policies, tok)
		}
		if len(cfg.Policies) == 0 {
			return cfg, fmt.Errorf("-frontier-policies is empty")
		}
		if !hasAlways {
			return cfg, fmt.Errorf("-frontier-policies must include %q (the baseline of the delta columns)", admission.Always)
		}
	}
	if s := strings.TrimSpace(*frTraces); s != "" {
		cfg.Traces = nil
		for _, tok := range strings.Split(s, ",") {
			tok = strings.TrimSpace(strings.ToLower(tok))
			if tok == "" {
				continue
			}
			known := false
			for _, n := range workload.Names() {
				if tok == n {
					known = true
					break
				}
			}
			if !known {
				return cfg, fmt.Errorf("unknown trace %q; available: %s",
					tok, strings.Join(workload.Names(), ", "))
			}
			cfg.Traces = append(cfg.Traces, tok)
		}
		if len(cfg.Traces) == 0 {
			return cfg, fmt.Errorf("-frontier-traces is empty")
		}
	}
	if *frClients < 0 {
		return cfg, fmt.Errorf("-frontier-clients must be positive")
	}
	if *frClients > 0 {
		cfg.Clients = *frClients
	}
	if *frDuration < 0 {
		return cfg, fmt.Errorf("-frontier-duration must be positive")
	}
	if *frDuration > 0 {
		cfg.Duration = des.Time(*frDuration) * des.Second
	}
	if *frThink < 0 {
		return cfg, fmt.Errorf("-frontier-think must be positive")
	}
	cfg.ThinkTime = *frThink
	cfg.Parallel = !*frSeq
	return cfg, nil
}

// runFrontier executes the admission factorial, prints the per-cell
// frontier table, and writes frontier_summary.csv plus BENCH_10.json
// (schema conscale-bench/10, frontier section).
func runFrontier(seed uint64, outDir string) error {
	cfg, err := parseFrontier(seed)
	if err != nil {
		return err
	}
	fmt.Printf("   %d policies × %d controllers × %d traces = %d runs (%d clients, %.0fs each)\n",
		len(cfg.Policies), len(cfg.Controllers), len(cfg.Traces),
		len(cfg.Policies)*len(cfg.Controllers)*len(cfg.Traces),
		cfg.Clients, float64(cfg.Duration))
	cfg.Progress = func(done, total int, row experiment.FrontierRow) {
		fmt.Printf("   [%3d/%3d] %-16s %-20s %-10s p99=%.0fms goodput=%d sheds=%d wall=%.1fs\n",
			done, total, row.Trace, row.Controller, row.Policy,
			row.P99Ms, row.Goodput, row.Sheds, row.WallSec)
	}
	res := experiment.RunFrontier(cfg)
	fmt.Println()
	experiment.RenderFrontier(os.Stdout, res)
	if best, ok := res.BestTailCut(10); ok {
		fmt.Printf("\n   best tail cut within 10%% goodput loss: %s/%s/%s Δp99=%.1f%% Δgoodput=%.2f%%\n",
			best.Trace, best.Controller, best.Policy, best.P99DeltaPct, best.GoodputDeltaPct)
	}

	if err := writeCSV(outDir, "frontier_summary.csv", func(f *os.File) error {
		experiment.WriteFrontierCSV(f, res)
		return nil
	}); err != nil {
		return err
	}
	return writeCSV(outDir, "BENCH_10.json", func(f *os.File) error {
		return experiment.WriteFrontierReport(f, res)
	})
}

func parseEpisodes(seed uint64) (experiment.EpisodesConfig, error) {
	cfg := experiment.DefaultEpisodesConfig()
	cfg.Seed = seed
	cfg.Chaos = *epChaos
	if s := strings.TrimSpace(*epControllers); s != "" {
		cfg.Controllers = nil
		for _, tok := range strings.Split(s, ",") {
			tok = strings.TrimSpace(strings.ToLower(tok))
			if tok == "" {
				continue
			}
			if _, err := controller.New(tok, controller.Options{}); err != nil {
				return cfg, err
			}
			cfg.Controllers = append(cfg.Controllers, tok)
		}
		if len(cfg.Controllers) == 0 {
			return cfg, fmt.Errorf("-episodes-controllers is empty")
		}
	}
	if s := strings.TrimSpace(*epTraces); s != "" {
		cfg.Traces = nil
		for _, tok := range strings.Split(s, ",") {
			tok = strings.TrimSpace(strings.ToLower(tok))
			if tok == "" {
				continue
			}
			known := false
			for _, n := range workload.Names() {
				if tok == n {
					known = true
					break
				}
			}
			if !known {
				return cfg, fmt.Errorf("unknown trace %q; available: %s",
					tok, strings.Join(workload.Names(), ", "))
			}
			cfg.Traces = append(cfg.Traces, tok)
		}
		if len(cfg.Traces) == 0 {
			return cfg, fmt.Errorf("-episodes-traces is empty")
		}
	}
	if *epUsers < 0 {
		return cfg, fmt.Errorf("-episodes-users must be positive")
	}
	if *epUsers > 0 {
		cfg.Users = *epUsers
	}
	if *epDuration < 0 {
		return cfg, fmt.Errorf("-episodes-duration must be positive")
	}
	if *epDuration > 0 {
		cfg.Duration = des.Time(*epDuration) * des.Second
	}
	return cfg, nil
}

// runEpisodes executes the forensics matrix, prints the per-cell table,
// the controller ranking, and the headline-trace ASCII episode reports,
// and writes per-cell attribution JSON plus a combined Perfetto document
// carrying the episode annotation track.
func runEpisodes(seed uint64, outDir string) error {
	cfg, err := parseEpisodes(seed)
	if err != nil {
		return err
	}
	fmt.Printf("   %d controllers × %d traces = %d cells (%.0fs each, chaos=%v)\n",
		len(cfg.Controllers), len(cfg.Traces),
		len(cfg.Controllers)*len(cfg.Traces), float64(cfg.Duration), cfg.Chaos)
	cells := experiment.RunEpisodes(cfg)
	experiment.RenderEpisodes(os.Stdout, cells)
	fmt.Println()
	experiment.RenderEpisodeRanking(os.Stdout, experiment.RankEpisodes(cells))

	if err := writeCSV(outDir, "episodes_summary.csv", func(f *os.File) error {
		if _, err := fmt.Fprintln(f, "trace,controller,episodes,total_dur_s,mean_depth_ms,max_depth_ms,area_over_slo,fault_overlapped,fault_attributed,fault_top,fault_top_correct"); err != nil {
			return err
		}
		for _, c := range cells {
			if _, err := fmt.Fprintf(f, "%s,%s,%d,%.1f,%.1f,%.1f,%.3f,%d,%d,%d,%d\n",
				c.Trace, c.Controller, c.Episodes, c.TotalDurS, c.MeanDepthMs,
				c.MaxDepthMs, c.Area, c.FaultOverlapped, c.FaultAttributed,
				c.FaultTop, c.FaultTopCorrect); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := writeCSV(outDir, "episodes_attribution.csv", func(f *os.File) error {
		if _, err := fmt.Fprintln(f, "trace,controller,episode,onset_s,onset_hms,recovery_s,duration_s,depth_ms,area_over_slo,top_cause,top_score,top_at_s,top_detail"); err != nil {
			return err
		}
		for _, c := range cells {
			if c.Report == nil {
				continue
			}
			for i, er := range c.Report.Episodes {
				ep := er.Episode
				top := er.TopCause()
				if _, err := fmt.Fprintf(f, "%s,%s,%d,%.3f,%s,%.3f,%.3f,%.1f,%.3f,%s,%.2f,%.3f,%s\n",
					c.Trace, c.Controller, i+1, float64(ep.Onset),
					trace.FormatSimTime(ep.Onset), float64(ep.Recovery),
					float64(ep.Duration()), ep.Depth*1000, ep.AreaOverSLO,
					top.Kind, top.Score, float64(top.At),
					strings.ReplaceAll(top.Detail, ",", ";")); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}

	// Per-cell JSON reports; ASCII timelines for the headline trace only
	// (every cell's ASCII would drown the summary tables).
	var perfetto *trace.ChromeTrace
	for _, c := range cells {
		if c.Report == nil {
			continue
		}
		name := "episode_report_" + sanitize(c.Trace) + "_" + sanitize(c.Controller) + ".json"
		if err := writeCSV(outDir, name, func(f *os.File) error {
			return forensics.WriteJSON(f, c.Report)
		}); err != nil {
			return err
		}
		if c.Trace == workload.BigSpike && c.Episodes > 0 {
			fmt.Printf("\n   episode reports, %s / %s:\n", c.Trace, c.Controller)
			if err := forensics.WriteASCII(os.Stdout, c.Report); err != nil {
				return err
			}
			if perfetto == nil && c.Res.Tracer != nil {
				doc := trace.BuildChromeTrace(c.Res.Tracer.Slowest(), c.Res.Audit)
				forensics.AppendChrome(&doc, c.Report)
				perfetto = &doc
			}
		}
	}
	if perfetto != nil {
		if err := writeCSV(outDir, "episodes_perfetto.json", func(f *os.File) error {
			enc := json.NewEncoder(f)
			return enc.Encode(perfetto)
		}); err != nil {
			return err
		}
	}
	return nil
}

// parseHypothesis expands the hypothesis flags, validating ids and
// trace names up front.
func parseHypothesis(seed uint64) (experiment.HypothesisConfig, error) {
	cfg := experiment.HypothesisConfig{BaseSeed: seed}
	if s := strings.TrimSpace(*hypoIDs); s != "" {
		for _, tok := range strings.Split(s, ",") {
			tok = strings.TrimSpace(strings.ToLower(tok))
			if tok == "" {
				continue
			}
			known := false
			for _, id := range experiment.HypothesisIDs() {
				if tok == id {
					known = true
					break
				}
			}
			if !known {
				return cfg, fmt.Errorf("unknown hypothesis %q; available: %s",
					tok, strings.Join(experiment.HypothesisIDs(), ", "))
			}
			cfg.IDs = append(cfg.IDs, tok)
		}
	}
	if *hypoSeeds < 0 {
		return cfg, fmt.Errorf("-hypothesis-seeds must be positive")
	}
	cfg.Seeds = *hypoSeeds
	if *hypoDuration < 0 {
		return cfg, fmt.Errorf("-hypothesis-duration must be positive")
	}
	cfg.Duration = des.Time(*hypoDuration) * des.Second
	if *hypoUsers < 0 {
		return cfg, fmt.Errorf("-hypothesis-users must be positive")
	}
	cfg.Users = *hypoUsers
	if s := strings.TrimSpace(*hypoTraces); s != "" {
		for _, tok := range strings.Split(s, ",") {
			tok = strings.TrimSpace(strings.ToLower(tok))
			if tok == "" {
				continue
			}
			known := false
			for _, n := range workload.Names() {
				if tok == n {
					known = true
					break
				}
			}
			if !known {
				return cfg, fmt.Errorf("unknown trace %q; available: %s",
					tok, strings.Join(workload.Names(), ", "))
			}
			cfg.Traces = append(cfg.Traces, tok)
		}
	}
	return cfg, nil
}

// runHypothesis executes the declared hypotheses, prints the FINDINGS
// table, writes results/hypothesis_<id>.csv + hypothesis_summary.csv
// plus a twin showcase (sample CSV and Perfetto annotation track from
// one fully-armed steady run), and fails the process when a CI-gated
// hypothesis does not come back SUPPORTED.
func runHypothesis(seed uint64, outDir string) error {
	cfg, err := parseHypothesis(seed)
	if err != nil {
		return err
	}
	results, err := experiment.RunHypotheses(cfg)
	if err != nil {
		return err
	}
	if err := experiment.RenderHypotheses(os.Stdout, results); err != nil {
		return err
	}
	for i := range results {
		r := &results[i]
		if err := writeCSV(outDir, "hypothesis_"+sanitize(r.ID)+".csv", func(f *os.File) error {
			return experiment.WriteHypothesisCSV(f, r)
		}); err != nil {
			return err
		}
	}
	if err := writeCSV(outDir, "hypothesis_summary.csv", func(f *os.File) error {
		return experiment.WriteHypothesisSummaryCSV(f, results)
	}); err != nil {
		return err
	}

	// Twin showcase: one fully-armed steady run for the sample timeline
	// and the Perfetto "twin" annotation track.
	rc := experiment.DefaultRunConfig(scaling.EC2, workload.Constant)
	rc.MaxUsers = 2500
	rc.Duration = 300 * des.Second
	rc.Seed = seed
	rc.Tracing = &trace.Config{}
	rc.Forensics = &forensics.Config{}
	rc.Twin = &twin.Config{}
	res := experiment.Run(rc)
	if err := writeCSV(outDir, "hypothesis_twin_timeline.csv", func(f *os.File) error {
		return experiment.WriteTwinCSV(f, res)
	}); err != nil {
		return err
	}
	if err := writeCSV(outDir, "hypothesis_twin_perfetto.json", func(f *os.File) error {
		doc := trace.BuildChromeTrace(res.Tracer.Slowest(), res.Audit)
		twin.AppendChrome(&doc, res.Twin.Samples(), res.Twin.Drifts())
		enc := json.NewEncoder(f)
		return enc.Encode(&doc)
	}); err != nil {
		return err
	}

	if fails := experiment.GatedFailures(results); len(fails) != 0 {
		return fmt.Errorf("gated hypothesis failed:\n  %s", strings.Join(fails, "\n  "))
	}
	return nil
}
