// Command tracegen emits the six realistic bursty workload traces of the
// paper's Fig. 9 as CSV (one column per trace, one row per second).
//
// Usage:
//
//	tracegen > traces.csv
//	tracegen -users 7500 -duration 720
package main

import (
	"flag"
	"fmt"
	"os"

	"conscale/internal/des"
	"conscale/internal/experiment"
	"conscale/internal/workload"
)

func main() {
	var (
		users    = flag.Int("users", 7500, "maximum concurrent users")
		duration = flag.Float64("duration", 720, "trace length in seconds")
	)
	flag.Parse()

	var traces []experiment.TraceSeries
	for _, name := range workload.Names() {
		tr := workload.NewTrace(name, *users, des.Time(*duration))
		traces = append(traces, experiment.TraceSeries{Name: name, Users: tr.Series(des.Second)})
	}
	if err := experiment.WriteTraceCSV(os.Stdout, traces); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
