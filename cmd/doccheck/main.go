// Command doccheck is the doc-drift guard: it extracts every command
// invocation and code identifier the prose documentation references and
// verifies each one still works against the current tree. Documentation
// that names a deleted experiment id, a renamed flag, or a removed
// benchmark fails CI instead of quietly rotting.
//
// Usage:
//
//	go run ./cmd/doccheck [-root DIR] [-exec-examples quickstart,...]
//
// Checks, in order:
//
//  1. Every `go run ./cmd/experiments ...` invocation found in the docs
//     (fenced sh blocks and inline code spans) is replayed with the
//     -check flag appended, which validates the -run ids and the scale
//     sweep flags without executing anything.
//  2. Every other `go run ./cmd/<tool> -flag ...` invocation is checked
//     against the tool's own -h usage text: a documented flag the tool
//     no longer defines is an error.
//  3. Every `go run ./examples/<name>` reference must point at an
//     existing directory, and `go build ./...` must succeed (so every
//     example compiles). Examples named in -exec-examples are also run
//     and must exit 0.
//  4. Every `BenchmarkXxx` / `TestXxx` identifier quoted in the docs
//     must exist in some _test.go file.
//
// Exit status is 0 when everything holds, 1 with one line per failure
// otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// defaultDocs is the audited document set.
var defaultDocs = []string{"README.md", "EXPERIMENTS.md", "ARCHITECTURE.md", "DESIGN.md"}

// invocation is one command line extracted from a document.
type invocation struct {
	doc  string // document it came from
	line int    // 1-based line number
	cmd  string // the command text
}

func main() {
	root := flag.String("root", ".", "repository root")
	execExamples := flag.String("exec-examples", "", "comma-separated example names to actually run")
	flag.Parse()

	var failures []string
	fail := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}

	invocations, idents := scanDocs(*root, fail)

	checkExperiments(*root, invocations, fail)
	checkToolFlags(*root, invocations, fail)
	checkExamples(*root, invocations, strings.Split(*execExamples, ","), fail)
	checkIdentifiers(*root, idents, fail)

	for _, f := range failures {
		fmt.Println(f)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d failure(s)\n", len(failures))
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d invocation(s) and %d identifier(s) verified across %d doc(s)\n",
		len(invocations), len(idents), len(defaultDocs))
}

var (
	fenceRe  = regexp.MustCompile("^```")
	inlineRe = regexp.MustCompile("`([^`]+)`")
	identRe  = regexp.MustCompile(`^(Benchmark|Test)[A-Za-z0-9_]+$`)
)

// scanDocs walks the audited documents collecting command invocations
// (from sh fences and inline code spans) and quoted test identifiers.
func scanDocs(root string, fail func(string, ...any)) ([]invocation, map[string][]invocation) {
	var invs []invocation
	idents := map[string][]invocation{}
	for _, doc := range defaultDocs {
		data, err := os.ReadFile(filepath.Join(root, doc))
		if err != nil {
			fail("%s: unreadable: %v", doc, err)
			continue
		}
		inFence, fenceIsSh := false, false
		for i, line := range strings.Split(string(data), "\n") {
			n := i + 1
			if fenceRe.MatchString(strings.TrimSpace(line)) {
				if !inFence {
					inFence = true
					fenceIsSh = strings.Contains(line, "sh") || strings.Contains(line, "bash")
				} else {
					inFence, fenceIsSh = false, false
				}
				continue
			}
			if inFence && fenceIsSh {
				if cmd := stripShellLine(line); strings.HasPrefix(cmd, "go run ") {
					invs = append(invs, invocation{doc, n, cmd})
				}
				continue
			}
			if inFence {
				continue // non-sh fence (go code etc.)
			}
			for _, m := range inlineRe.FindAllStringSubmatch(line, -1) {
				span := strings.TrimSpace(m[1])
				switch {
				case strings.HasPrefix(span, "go run ./cmd/"), strings.HasPrefix(span, "go run ./examples/"):
					invs = append(invs, invocation{doc, n, span})
				case strings.HasPrefix(span, "cmd/experiments -run "):
					invs = append(invs, invocation{doc, n, "go run ./" + span})
				case identRe.MatchString(span):
					idents[span] = append(idents[span], invocation{doc, n, span})
				default:
					// Wildcard references like BenchmarkChaos_* expand to a
					// prefix-existence check.
					if strings.HasSuffix(span, "_*") && identRe.MatchString(strings.TrimSuffix(span, "_*")+"X") {
						idents[span] = append(idents[span], invocation{doc, n, span})
					}
				}
			}
		}
		if inFence {
			fail("%s: unterminated code fence", doc)
		}
	}
	return invs, idents
}

// stripShellLine removes trailing comments, redirections, and pipes so
// only the command and its flags remain.
func stripShellLine(line string) string {
	for _, sep := range []string{"#", ">", "|"} {
		if i := strings.Index(line, sep); i >= 0 {
			line = line[:i]
		}
	}
	return strings.TrimSpace(line)
}

// checkExperiments replays every cmd/experiments invocation with -check
// appended: ids are resolved and flags parsed, nothing is executed.
func checkExperiments(root string, invs []invocation, fail func(string, ...any)) {
	for _, inv := range invs {
		if !strings.Contains(inv.cmd, "./cmd/experiments") {
			continue
		}
		args := strings.Fields(inv.cmd)[2:] // drop "go run"
		args = append(args, "-check")
		out, err := runGo(root, append([]string{"run"}, args...))
		if err != nil {
			fail("%s:%d: `%s` fails validation: %s", inv.doc, inv.line, inv.cmd, firstLine(out))
		}
	}
}

// checkToolFlags verifies that the flags a documented invocation passes
// to a non-experiments tool are all still defined, using the tool's -h
// usage text as ground truth.
func checkToolFlags(root string, invs []invocation, fail func(string, ...any)) {
	usage := map[string]string{} // package path -> usage text
	for _, inv := range invs {
		fields := strings.Fields(inv.cmd)
		if len(fields) < 3 || !strings.HasPrefix(fields[2], "./cmd/") || fields[2] == "./cmd/experiments" {
			continue
		}
		pkg := fields[2]
		text, ok := usage[pkg]
		if !ok {
			out, _ := runGo(root, []string{"run", pkg, "-h"})
			text = out
			usage[pkg] = text
			if !strings.Contains(text, "Usage") && !strings.Contains(text, "-") {
				fail("%s:%d: `%s`: %s prints no usage text (does the tool build?)", inv.doc, inv.line, inv.cmd, pkg)
				continue
			}
		}
		for _, f := range fields[3:] {
			if !strings.HasPrefix(f, "-") {
				continue
			}
			name := strings.TrimLeft(strings.SplitN(f, "=", 2)[0], "-")
			if name == "" || name == "h" {
				continue
			}
			if !strings.Contains(text, "-"+name+" ") && !strings.Contains(text, "-"+name+"\n") &&
				!strings.Contains(text, "-"+name+"\t") {
				fail("%s:%d: `%s` uses flag -%s which %s does not define", inv.doc, inv.line, inv.cmd, name, pkg)
			}
		}
	}
}

// checkExamples verifies referenced example directories exist, that the
// whole tree (examples included) builds, and runs the allowlisted ones.
func checkExamples(root string, invs []invocation, execList []string, fail func(string, ...any)) {
	if out, err := runGo(root, []string{"build", "./..."}); err != nil {
		fail("go build ./... fails: %s", firstLine(out))
	}
	shouldRun := map[string]bool{}
	for _, name := range execList {
		if name = strings.TrimSpace(name); name != "" {
			shouldRun[name] = true
		}
	}
	ran := map[string]bool{}
	for _, inv := range invs {
		fields := strings.Fields(inv.cmd)
		if len(fields) < 3 || !strings.HasPrefix(fields[2], "./examples/") {
			continue
		}
		name := strings.TrimPrefix(fields[2], "./examples/")
		dir := filepath.Join(root, "examples", name)
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			fail("%s:%d: `%s` references missing example %s", inv.doc, inv.line, inv.cmd, name)
			continue
		}
		if shouldRun[name] && !ran[name] {
			ran[name] = true
			if out, err := runGo(root, []string{"run", "./examples/" + name}); err != nil {
				fail("%s:%d: example %s fails to run: %s", inv.doc, inv.line, name, firstLine(out))
			}
		}
	}
}

// checkIdentifiers greps the repo's _test.go files for every quoted
// Test/Benchmark name (wildcards check as prefixes).
func checkIdentifiers(root string, idents map[string][]invocation, fail func(string, ...any)) {
	if len(idents) == 0 {
		return
	}
	var corpus strings.Builder
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if name := info.Name(); name == ".git" || name == "results" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, "_test.go") {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			corpus.Write(data)
			corpus.WriteByte('\n')
		}
		return nil
	})
	if err != nil {
		fail("scanning _test.go files: %v", err)
		return
	}
	text := corpus.String()
	names := make([]string, 0, len(idents))
	for name := range idents {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		needle := "func " + name
		if strings.HasSuffix(name, "_*") {
			needle = "func " + strings.TrimSuffix(name, "*")
		}
		if !strings.Contains(text, needle) {
			for _, inv := range idents[name] {
				fail("%s:%d: documented identifier %s not found in any _test.go file", inv.doc, inv.line, name)
			}
		}
	}
}

// runGo executes the go tool with the given args from root and returns
// combined output.
func runGo(root string, args []string) (string, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// firstLine trims output to its first non-empty line for error reports.
func firstLine(s string) string {
	for _, line := range strings.Split(s, "\n") {
		if line = strings.TrimSpace(line); line != "" {
			return line
		}
	}
	return "(no output)"
}
