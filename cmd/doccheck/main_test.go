package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeDocs materializes the audited document set in a temp root so the
// scanner has all four files.
func writeDocs(t *testing.T, readme string) string {
	t.Helper()
	root := t.TempDir()
	for _, doc := range defaultDocs {
		body := "# stub\n"
		if doc == "README.md" {
			body = readme
		}
		if err := os.WriteFile(filepath.Join(root, doc), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func scan(t *testing.T, readme string) ([]invocation, map[string][]invocation, []string) {
	t.Helper()
	var failures []string
	invs, idents := scanDocs(writeDocs(t, readme), func(f string, args ...any) {
		failures = append(failures, f)
	})
	return invs, idents, failures
}

func TestScanExtractsFencedCommands(t *testing.T) {
	invs, _, failures := scan(t, "```sh\ngo run ./cmd/experiments -run fig1   # comment\nls\n```\n")
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	if len(invs) != 1 || invs[0].cmd != "go run ./cmd/experiments -run fig1" {
		t.Fatalf("got %+v, want one stripped experiments invocation", invs)
	}
	if invs[0].line != 2 {
		t.Fatalf("line = %d, want 2", invs[0].line)
	}
}

func TestScanExtractsInlineSpans(t *testing.T) {
	invs, idents, _ := scan(t,
		"Regenerate: `cmd/experiments -run table1`, bench `BenchmarkTable1_TailLatency`,\n"+
			"wildcard `BenchmarkChaos_*`, tool `go run ./cmd/tracegen -plot`.\n")
	if len(invs) != 2 {
		t.Fatalf("got %d invocations, want 2: %+v", len(invs), invs)
	}
	if invs[0].cmd != "go run ./cmd/experiments -run table1" {
		t.Fatalf("inline experiments span not normalised: %q", invs[0].cmd)
	}
	for _, want := range []string{"BenchmarkTable1_TailLatency", "BenchmarkChaos_*"} {
		if len(idents[want]) != 1 {
			t.Errorf("identifier %q not collected: %v", want, idents)
		}
	}
}

func TestScanIgnoresGoFences(t *testing.T) {
	invs, _, _ := scan(t, "```go\n// go run ./cmd/experiments -run fake\n```\n")
	if len(invs) != 0 {
		t.Fatalf("go fence leaked invocations: %+v", invs)
	}
}

func TestScanFlagsUnterminatedFence(t *testing.T) {
	_, _, failures := scan(t, "```sh\ngo run ./cmd/tracegen\n")
	if len(failures) == 0 {
		t.Fatal("unterminated fence not reported")
	}
}

func TestStripShellLine(t *testing.T) {
	for in, want := range map[string]string{
		"go run ./cmd/tracegen > traces.csv": "go run ./cmd/tracegen",
		"go run ./x | head   # note":         "go run ./x",
		"  go run ./y  ":                     "go run ./y",
	} {
		if got := stripShellLine(in); got != want {
			t.Errorf("stripShellLine(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCheckIdentifiersFindsMissing(t *testing.T) {
	root := t.TempDir()
	src := "package x\n\nimport \"testing\"\n\nfunc TestReal(t *testing.T) {}\nfunc BenchmarkReal_Case(b *testing.B) {}\n"
	if err := os.WriteFile(filepath.Join(root, "x_test.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var failures []string
	checkIdentifiers(root, map[string][]invocation{
		"TestReal":        {{doc: "d", line: 1}},
		"BenchmarkReal_*": {{doc: "d", line: 2}},
		"TestGone":        {{doc: "d", line: 3}},
	}, func(f string, args ...any) {
		failures = append(failures, strings.Join(strings.Fields(f), " "))
	})
	if len(failures) != 1 {
		t.Fatalf("got failures %v, want exactly the missing TestGone", failures)
	}
}

// TestRepoDocsScanClean is the live gate: the real documents must scan
// without structural failures and must reference the experiments CLI —
// if the docs ever stop naming the regenerate commands, the drift guard
// has nothing to guard and this fails loudly.
func TestRepoDocsScanClean(t *testing.T) {
	var failures []string
	invs, idents := scanDocs("../..", func(f string, args ...any) {
		failures = append(failures, f)
	})
	if len(failures) != 0 {
		t.Fatalf("doc scan failures: %v", failures)
	}
	if len(invs) < 10 || len(idents) < 10 {
		t.Fatalf("suspiciously few references: %d invocations, %d identifiers", len(invs), len(idents))
	}
	// Full command validation (which shells out to `go run`) is the
	// doccheck CI job's business; here we at least pin that every
	// documented experiments id is a -run invocation doccheck can check.
	seen := false
	for _, inv := range invs {
		if strings.Contains(inv.cmd, "./cmd/experiments") && strings.Contains(inv.cmd, "-run ") {
			seen = true
		}
	}
	if !seen {
		t.Fatal("no cmd/experiments -run invocations found in the docs")
	}
}
