// Command conscale-sim runs one full scaling scenario — trace, framework,
// topology — and emits the per-second timeline as CSV plus a summary of
// tail latencies and scaling events on stderr.
//
// Usage:
//
//	conscale-sim -trace large-variations -mode conscale -seed 1 > timeline.csv
//	conscale-sim -mode ec2 -duration 720 -users 7500 -summary
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"conscale/internal/des"
	"conscale/internal/experiment"
	"conscale/internal/plot"
	"conscale/internal/scaling"
	"conscale/internal/workload"
)

func main() {
	var (
		traceName = flag.String("trace", workload.LargeVariations, "workload trace: "+strings.Join(workload.Names(), ", "))
		mode      = flag.String("mode", "conscale", "scaling framework: ec2, dcm, conscale")
		seed      = flag.Uint64("seed", 1, "experiment seed (runs are bit-reproducible)")
		users     = flag.Int("users", 7500, "maximum concurrent users")
		duration  = flag.Float64("duration", 720, "run length in simulated seconds")
		think     = flag.Float64("think", 3, "mean user think time in seconds")
		summary   = flag.Bool("summary", false, "print only the summary, no CSV")
		showPlot  = flag.Bool("plot", false, "render the RT/throughput timeline as an ASCII chart on stderr")
	)
	flag.Parse()

	var m scaling.Mode
	switch strings.ToLower(*mode) {
	case "ec2", "ec2-autoscaling":
		m = scaling.EC2
	case "dcm":
		m = scaling.DCM
	case "conscale":
		m = scaling.ConScale
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	cfg := experiment.DefaultRunConfig(m, *traceName)
	cfg.Seed = *seed
	cfg.MaxUsers = *users
	cfg.Duration = des.Time(*duration)
	cfg.ThinkTime = *think

	res := experiment.Run(cfg)
	experiment.RenderRunSummary(os.Stderr, res)
	if *showPlot {
		var ts, rts, tps []float64
		for _, p := range res.Timeline {
			ts = append(ts, float64(p.Time))
			rts = append(rts, p.MeanRT*1000)
			tps = append(tps, p.Throughput)
		}
		fmt.Fprintln(os.Stderr, plot.New("response time (ms)", 100, 16).
			Labels("time (s)", "mean RT (ms)").Line("rt", ts, rts, '*').Render())
		fmt.Fprintln(os.Stderr, plot.New("throughput (req/s)", 100, 12).
			Labels("time (s)", "req/s").Line("tp", ts, tps, '+').Render())
	}
	if !*summary {
		if err := experiment.WriteTimelineCSV(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
