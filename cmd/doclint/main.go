// Command doclint enforces the repo's godoc contract: every exported
// identifier in the audited packages must carry a doc comment, and a
// doc comment on a single-name declaration must start with the name it
// documents (the standard godoc convention, so `go doc` output reads as
// prose). It is the documentation half of the CI docs gate; the other
// half, cmd/doccheck, keeps the prose documents runnable.
//
// Usage:
//
//	go run ./cmd/doclint [-root DIR] [packages...]
//
// With no package arguments it audits the default set: the conscale
// facade package plus internal/{des,workload,cluster,sct,scaling}.
// Violations are printed one per line as path:line: message and the
// process exits 1; a clean audit exits 0.
//
// The rules, precisely:
//
//   - Every exported top-level const, var, type, and func needs a doc
//     comment. A comment on a grouped declaration (`const (...)` or
//     `var (...)`) covers every name in the group.
//   - Exported methods and exported struct fields of exported types
//     need doc comments too.
//   - A doc comment on a declaration that introduces exactly one name
//     must begin with that name (optionally preceded by "A", "An", or
//     "The", matching the godoc convention).
//   - Deprecated markers and directive comments (//go:...) do not count
//     as documentation.
//   - _test.go files are exempt.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// defaultPackages is the audited set: the public facade and the
// simulator packages whose exported APIs the documentation references.
var defaultPackages = []string{
	".",
	"internal/des",
	"internal/workload",
	"internal/admission",
	"internal/cluster",
	"internal/sct",
	"internal/scaling",
	"internal/controller",
	"internal/forensics",
	"internal/twin",
	"internal/qnet",
}

func main() {
	root := flag.String("root", ".", "repository root the package paths are relative to")
	flag.Parse()

	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = defaultPackages
	}

	var violations []string
	for _, rel := range pkgs {
		vs, err := lintPackage(filepath.Join(*root, rel))
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		violations = append(violations, vs...)
	}
	sort.Strings(violations)
	for _, v := range violations {
		fmt.Println(v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
	fmt.Printf("doclint: %d package(s) clean\n", len(pkgs))
}

// lintPackage parses every non-test .go file in dir and returns the
// formatted violations found.
func lintPackage(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", dir, err)
	}
	var out []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			out = append(out, lintFile(fset, file)...)
		}
	}
	return out, nil
}

// lintFile walks one file's top-level declarations and collects
// violations of the doc-comment rules.
func lintFile(fset *token.FileSet, file *ast.File) []string {
	var out []string
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, fmt.Sprintf(format, args...)))
	}

	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			if d.Recv != nil && !exportedReceiver(d.Recv) {
				continue // method on an unexported type
			}
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			checkDoc(report, d.Pos(), d.Doc, kind, d.Name.Name)
		case *ast.GenDecl:
			lintGenDecl(report, d)
		}
	}
	return out
}

// lintGenDecl handles const/var/type declarations, including grouped
// forms where one comment may cover the whole block.
func lintGenDecl(report func(token.Pos, string, ...any), d *ast.GenDecl) {
	groupDoc := hasDoc(d.Doc)
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			doc := s.Doc
			if doc == nil {
				doc = d.Doc
			}
			checkDoc(report, s.Pos(), doc, "type", s.Name.Name)
			if st, ok := s.Type.(*ast.StructType); ok {
				lintStructFields(report, s.Name.Name, st)
			}
		case *ast.ValueSpec:
			exported := exportedNames(s.Names)
			if len(exported) == 0 {
				continue
			}
			if groupDoc {
				continue // the block comment covers the group
			}
			doc := s.Doc
			if doc == nil {
				doc = s.Comment // trailing line comment also counts for group members
			}
			if !hasDoc(doc) {
				report(s.Pos(), "exported %s %s has no doc comment", declKind(d.Tok), strings.Join(exported, ", "))
				continue
			}
			if len(exported) == 1 && s.Doc != nil {
				checkDoc(report, s.Pos(), s.Doc, declKind(d.Tok), exported[0])
			}
		}
	}
}

// lintStructFields requires doc comments on exported fields of an
// exported struct type; a trailing line comment satisfies the rule.
func lintStructFields(report func(token.Pos, string, ...any), typeName string, st *ast.StructType) {
	for _, f := range st.Fields.List {
		exported := exportedNames(f.Names)
		if len(exported) == 0 {
			continue
		}
		if !hasDoc(f.Doc) && !hasDoc(f.Comment) {
			report(f.Pos(), "exported field %s.%s has no doc comment", typeName, strings.Join(exported, ", "))
		}
	}
}

// checkDoc reports a missing doc comment, and for single-name
// declarations also enforces the starts-with-name convention.
func checkDoc(report func(token.Pos, string, ...any), pos token.Pos, doc *ast.CommentGroup, kind, name string) {
	if !hasDoc(doc) {
		report(pos, "exported %s %s has no doc comment", kind, name)
		return
	}
	first := firstDocWordLine(doc)
	for _, article := range []string{"A ", "An ", "The "} {
		first = strings.TrimPrefix(first, article)
	}
	if !strings.HasPrefix(first, name+" ") && !strings.HasPrefix(first, name+"'") &&
		first != name && !strings.HasPrefix(first, name+",") && !strings.HasPrefix(first, name+":") {
		report(pos, "doc comment for %s %s should start with %q", kind, name, name)
	}
}

// hasDoc reports whether the comment group contains real prose — at
// least one line that is not a compiler directive.
func hasDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		text = strings.TrimSpace(strings.TrimPrefix(text, "/*"))
		if text == "" || strings.HasPrefix(c.Text, "//go:") {
			continue
		}
		return true
	}
	return false
}

// firstDocWordLine returns the first non-empty, non-directive line of
// the comment group with comment markers stripped.
func firstDocWordLine(doc *ast.CommentGroup) string {
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, "//go:") {
			continue
		}
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimPrefix(text, "/*")
		text = strings.TrimSpace(text)
		if text != "" {
			return text
		}
	}
	return ""
}

// exportedReceiver reports whether a method's receiver names an
// exported type.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// exportedNames filters an identifier list down to the exported names.
func exportedNames(idents []*ast.Ident) []string {
	var out []string
	for _, id := range idents {
		if id.IsExported() {
			out = append(out, id.Name)
		}
	}
	return out
}

// declKind maps a GenDecl token to the word used in messages.
func declKind(tok token.Token) string {
	switch tok {
	case token.CONST:
		return "const"
	case token.VAR:
		return "var"
	default:
		return "declaration"
	}
}
