package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lintSource writes one .go file into a temp package dir and lints it.
func lintSource(t *testing.T, src string) []string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	vs, err := lintPackage(dir)
	if err != nil {
		t.Fatalf("lintPackage: %v", err)
	}
	return vs
}

func TestLintFlagsMissingDocs(t *testing.T) {
	vs := lintSource(t, `package x

func Exported() {}

type T struct {
	Field int
}

const C = 1

var V = 2
`)
	wants := []string{
		"exported function Exported has no doc comment",
		"exported type T has no doc comment",
		"exported field T.Field has no doc comment",
		"exported const C has no doc comment",
		"exported var V has no doc comment",
	}
	joined := strings.Join(vs, "\n")
	for _, w := range wants {
		if !strings.Contains(joined, w) {
			t.Errorf("missing violation %q in:\n%s", w, joined)
		}
	}
	if len(vs) != len(wants) {
		t.Errorf("got %d violations, want %d:\n%s", len(vs), len(wants), joined)
	}
}

func TestLintAcceptsDocumentedCode(t *testing.T) {
	vs := lintSource(t, `package x

// Exported does a thing.
func Exported() {}

// The T type holds a field.
type T struct {
	// Field counts things.
	Field int
	Other int // Other is documented by a trailing comment.
}

// Group constants share one comment.
const (
	A = 1
	B = 2
)

// V is a documented var.
var V = 2

// Method acts on T.
func (T) Method() {}

//go:generate true
// Gen has a doc comment after a directive.
func Gen() {}
`)
	if len(vs) != 0 {
		t.Fatalf("clean file produced violations:\n%s", strings.Join(vs, "\n"))
	}
}

func TestLintEnforcesStartsWithName(t *testing.T) {
	vs := lintSource(t, `package x

// Does a thing without naming itself.
func Exported() {}
`)
	if len(vs) != 1 || !strings.Contains(vs[0], `should start with "Exported"`) {
		t.Fatalf("want starts-with-name violation, got:\n%s", strings.Join(vs, "\n"))
	}
}

func TestLintIgnoresUnexported(t *testing.T) {
	vs := lintSource(t, `package x

func internal() {}

type hidden struct{ Field int }

func (hidden) Method() {}
`)
	if len(vs) != 0 {
		t.Fatalf("unexported code produced violations:\n%s", strings.Join(vs, "\n"))
	}
}

// TestAuditedPackagesStayClean is the real gate: the default package
// set must lint clean so CI fails the moment a new exported identifier
// lands without documentation.
func TestAuditedPackagesStayClean(t *testing.T) {
	root := "../.."
	for _, rel := range defaultPackages {
		vs, err := lintPackage(filepath.Join(root, rel))
		if err != nil {
			t.Fatalf("lint %s: %v", rel, err)
		}
		if len(vs) != 0 {
			t.Errorf("package %s has doc violations:\n%s", rel, strings.Join(vs, "\n"))
		}
	}
}
