// Package conscale is a faithful, self-contained reproduction of
// "Mitigating Large Response Time Fluctuations through Fast Concurrency
// Adapting in Clouds" (Liu, Zhang, Wang, Wei — IEEE IPDPS 2020).
//
// It provides, as a library:
//
//   - a deterministic discrete-event simulator of an n-tier web system
//     (the RUBBoS benchmark on a private cloud: web / app / DB tiers of
//     VM-hosted servers behind least-connection balancers, with bounded
//     thread pools, DB connection pools, synchronous thread-holding RPC,
//     and a multithreading-overhead model);
//   - the paper's online Scatter-Concurrency-Throughput (SCT) model,
//     which estimates each server's rational concurrency range
//     [Qlower, Qupper] from fine-grained (50 ms) measurements;
//   - three scaling frameworks — hardware-only EC2-AutoScaling, the
//     offline-profiled DCM baseline, and the paper's ConScale — sharing
//     one threshold engine;
//   - the six bursty workload traces of the evaluation and a closed-loop
//     user-population generator;
//   - an experiment harness that regenerates every table and figure of
//     the paper's evaluation section.
//
// # Quick start
//
//	cfg := conscale.DefaultClusterConfig()
//	c := conscale.NewCluster(cfg)
//	fw := conscale.NewFramework(c, conscale.DefaultScalingConfig(conscale.ModeConScale))
//	fw.Start()
//	tr := conscale.NewTrace(conscale.TraceLargeVariations, 7500, 720*conscale.Second)
//	gen := conscale.NewGenerator(c.Eng, conscale.NewRand(1), conscale.GeneratorConfig{
//		Trace: tr, ThinkTime: 3,
//	}, c.Submit)
//	gen.Start()
//	c.Eng.RunUntil(720 * conscale.Second)
//	fmt.Printf("p99 = %.0f ms\n", gen.TailLatency(99, 0)*1000)
//
// Everything is seeded and runs in virtual time: a 12-minute evaluation
// completes in a few seconds of wall clock, bit-identically on every run.
package conscale

import (
	"io"
	"net/http"

	"conscale/internal/admission"
	"conscale/internal/chaos"
	"conscale/internal/cluster"
	"conscale/internal/controller"
	"conscale/internal/des"
	"conscale/internal/experiment"
	"conscale/internal/forensics"
	"conscale/internal/lb"
	"conscale/internal/metrics"
	"conscale/internal/mgmt"
	"conscale/internal/qnet"
	"conscale/internal/rng"
	"conscale/internal/rubbos"
	"conscale/internal/scaling"
	"conscale/internal/sct"
	"conscale/internal/telemetry"
	"conscale/internal/trace"
	"conscale/internal/twin"
	"conscale/internal/workload"
)

// Virtual time.
type (
	// Time is virtual simulation time in seconds.
	Time = des.Time
	// Engine is the discrete-event simulation engine.
	Engine = des.Engine
)

// Time units.
const (
	Millisecond = des.Millisecond
	Second      = des.Second
)

// NewEngine returns a fresh simulation engine.
func NewEngine() *Engine { return des.New() }

// Randomness.
type (
	// Rand is the deterministic, splittable random source.
	Rand = rng.Source
)

// NewRand returns a seeded random source.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// Cluster: the n-tier system under test.
type (
	// Cluster is the simulated n-tier deployment.
	Cluster = cluster.Cluster
	// ClusterConfig configures topology, soft resources, and VM shapes.
	ClusterConfig = cluster.Config
	// Tier identifies web, app, or DB tier.
	Tier = cluster.Tier
)

// Tier constants.
const (
	TierWeb = cluster.Web
	TierApp = cluster.App
	TierDB  = cluster.DB
)

// NewCluster builds the initial topology on a fresh engine.
func NewCluster(cfg ClusterConfig) *Cluster { return cluster.New(cfg) }

// DefaultClusterConfig returns the paper's evaluation setup (1/1/1,
// soft resources 1000-60-40, 1-core VMs, leastconn, 15 s VM preparation).
func DefaultClusterConfig() ClusterConfig { return cluster.DefaultConfig() }

// Load balancing.
type (
	// Balancer is the HAProxy-substitute load balancer.
	Balancer = lb.Balancer
	// Policy selects the dispatch algorithm.
	Policy = lb.Policy
)

// Balancer policies.
const (
	RoundRobin = lb.RoundRobin
	LeastConn  = lb.LeastConn
)

// RUBBoS application model.
type (
	// Mix selects the RUBBoS workload mode.
	Mix = rubbos.Mix
	// Servlet is one RUBBoS interaction with per-tier demands.
	Servlet = rubbos.Servlet
	// RubbosWorkload is a calibrated servlet mix.
	RubbosWorkload = rubbos.Workload
)

// Workload mixes.
const (
	BrowseOnly = rubbos.BrowseOnly
	ReadWrite  = rubbos.ReadWrite
)

// NewRubbosWorkload builds the calibrated servlet mix for a mode and
// dataset scale.
func NewRubbosWorkload(mix Mix, datasetScale float64) *RubbosWorkload {
	return rubbos.NewWorkload(mix, datasetScale)
}

// Traces and load generation.
type (
	// Trace is a time-varying concurrent-user curve.
	Trace = workload.Trace
	// Generator replays a trace as a closed-loop user population.
	Generator = workload.Generator
	// GeneratorConfig configures the population.
	GeneratorConfig = workload.GeneratorConfig
	// TimelinePoint is one second of client-observed behaviour.
	TimelinePoint = workload.TimelinePoint
)

// The six bursty trace names of the paper's Fig. 9.
const (
	TraceLargeVariations = workload.LargeVariations
	TraceQuicklyVarying  = workload.QuicklyVarying
	TraceSlowlyVarying   = workload.SlowlyVarying
	TraceBigSpike        = workload.BigSpike
	TraceDualPhase       = workload.DualPhase
	TraceSteepTriPhase   = workload.SteepTriPhase
)

// TraceConstant names the flat trace — not one of the six evaluation
// traces, but the calibrated steady-state regime of the analytical twin
// and the hypothesis harness.
const TraceConstant = workload.Constant

// NewTrace builds one of the six standard traces.
func NewTrace(name string, maxUsers int, duration Time) *Trace {
	return workload.NewTrace(name, maxUsers, duration)
}

// NewConstantTrace holds a fixed population (profiling sweeps).
func NewConstantTrace(users int, duration Time) *Trace {
	return workload.NewConstantTrace(users, duration)
}

// TraceNames lists the six standard trace names in the paper's order.
func TraceNames() []string { return workload.Names() }

// NewGenerator wires a closed-loop generator onto an engine.
func NewGenerator(eng *Engine, rnd *Rand, cfg GeneratorConfig, submit func(done func(ok bool))) *Generator {
	return workload.NewGenerator(eng, rnd, cfg, submit)
}

// Metrics.
type (
	// WindowSample is one fine-grained {Q, TP, RT} tuple.
	WindowSample = metrics.WindowSample
	// Warehouse is the Metric Warehouse of the ConScale architecture.
	Warehouse = metrics.Warehouse
)

// NewWarehouse returns a warehouse with the given retention span.
func NewWarehouse(retention Time) *Warehouse { return metrics.NewWarehouse(retention) }

// SCT model.
type (
	// SCTEstimator turns window samples into rational-range estimates.
	SCTEstimator = sct.Estimator
	// SCTConfig tunes the estimator.
	SCTConfig = sct.Config
	// SCTEstimate is one rational-concurrency-range estimate.
	SCTEstimate = sct.Estimate
)

// NewSCTEstimator returns an estimator (zero-value config uses the paper's
// defaults: 3-minute collection window, 5% plateau tolerance).
func NewSCTEstimator(cfg SCTConfig) *SCTEstimator { return sct.New(cfg) }

// DefaultSCTConfig returns the paper's estimator configuration.
func DefaultSCTConfig() SCTConfig { return sct.DefaultConfig() }

// Scaling frameworks.
type (
	// Framework drives a cluster with one scaling strategy.
	Framework = scaling.Framework
	// ScalingConfig tunes a framework.
	ScalingConfig = scaling.Config
	// Mode selects EC2-AutoScaling, DCM, or ConScale behaviour.
	Mode = scaling.Mode
	// DCMProfile is the offline-trained soft-resource recommendation.
	DCMProfile = scaling.DCMProfile
	// ScalingEvent is one entry of the scaling log.
	ScalingEvent = scaling.Event
)

// Framework modes.
const (
	ModeEC2      = scaling.EC2
	ModeDCM      = scaling.DCM
	ModeConScale = scaling.ConScale
)

// NewFramework attaches a scaling framework to a cluster.
func NewFramework(c *Cluster, cfg ScalingConfig) *Framework { return scaling.New(c, cfg) }

// DefaultScalingConfig returns the shared evaluation settings for a mode.
func DefaultScalingConfig(mode Mode) ScalingConfig { return scaling.DefaultConfig(mode) }

// Experiments: the paper's tables and figures.
type (
	// RunConfig describes one full scaling run.
	RunConfig = experiment.RunConfig
	// RunResult captures a run's series and summary statistics.
	RunResult = experiment.RunResult
	// SweepConfig describes a fixed-concurrency profiling sweep.
	SweepConfig = experiment.SweepConfig
	// SweepResult is a measured concurrency-throughput curve.
	SweepResult = experiment.SweepResult
	// Table1Row is one row of the paper's Table I.
	Table1Row = experiment.Table1Row
)

// Run executes one full scaling experiment.
func Run(cfg RunConfig) *RunResult { return experiment.Run(cfg) }

// DefaultRunConfig returns the paper's evaluation parameters for a mode
// and trace.
func DefaultRunConfig(mode Mode, trace string) RunConfig {
	return experiment.DefaultRunConfig(mode, trace)
}

// Sweep measures a server's concurrency-throughput curve.
func Sweep(cfg SweepConfig) SweepResult { return experiment.Sweep(cfg) }

// Table1 regenerates the paper's Table I.
func Table1(seed uint64) []Table1Row { return experiment.Table1(seed) }

// TrainDCM derives the DCM baseline's offline profile.
func TrainDCM(seed uint64, cfg ClusterConfig) DCMProfile {
	return experiment.TrainDCM(seed, cfg)
}

// Chaos: cloud fault injection.
type (
	// ChaosSchedule is an ordered collection of fault events.
	ChaosSchedule = chaos.Schedule
	// ChaosFault is one scheduled fault event.
	ChaosFault = chaos.Fault
	// ChaosFaultKind enumerates the fault types.
	ChaosFaultKind = chaos.Kind
	// ChaosInjector arms a schedule on a cluster's engine.
	ChaosInjector = chaos.Injector
	// ChaosWindow records one activated fault for timeline overlays.
	ChaosWindow = chaos.Window
	// ChaosConfig parameterizes a composite generated fault scenario.
	ChaosConfig = chaos.Config
)

// Fault kinds.
const (
	ChaosVMCrash         = chaos.VMCrash
	ChaosCPUInterference = chaos.CPUInterference
	ChaosNetDelay        = chaos.NetDelay
	ChaosSlowBoot        = chaos.SlowBoot
)

// Target selectors for fault indices.
const (
	ChaosPickRandom = chaos.PickRandom
	ChaosWholeTier  = chaos.WholeTier
)

// NewChaosSchedule builds a schedule from the given faults.
func NewChaosSchedule(faults ...ChaosFault) *ChaosSchedule { return chaos.NewSchedule(faults...) }

// NewChaosInjector couples a schedule to a cluster; Arm before running.
func NewChaosInjector(c *Cluster, s *ChaosSchedule, seed uint64) *ChaosInjector {
	return chaos.NewInjector(c, s, seed)
}

// ChaosCrash returns a VM-crash fault.
func ChaosCrash(at Time, tier Tier, index int) ChaosFault { return chaos.Crash(at, tier, index) }

// ChaosInterference returns a noisy-neighbor CPU-slowdown window.
func ChaosInterference(at, dur Time, tier Tier, index int, slowdown float64) ChaosFault {
	return chaos.Interference(at, dur, tier, index, slowdown)
}

// ChaosJitter returns a network-delay window on the edge into tier.
func ChaosJitter(at, dur Time, tier Tier, delay Time) ChaosFault {
	return chaos.Jitter(at, dur, tier, delay)
}

// ChaosStragglers returns a slow-boot window.
func ChaosStragglers(at, dur Time, factor float64) ChaosFault {
	return chaos.Stragglers(at, dur, factor)
}

// GenerateChaos builds the merged schedule for a composite scenario.
func GenerateChaos(seed uint64, cfg ChaosConfig) *ChaosSchedule { return chaos.Generate(seed, cfg) }

// RandomCrashes generates a Poisson crash process over the given tiers.
func RandomCrashes(seed uint64, perMinute float64, duration Time, tiers ...Tier) *ChaosSchedule {
	return chaos.RandomCrashes(seed, perMinute, duration, tiers...)
}

// InterferenceBursts generates noisy-neighbor windows on a tier.
func InterferenceBursts(seed uint64, n int, duration, meanLen Time, tier Tier, slowdown float64) *ChaosSchedule {
	return chaos.InterferenceBursts(seed, n, duration, meanLen, tier, slowdown)
}

// Management agent (the JMX substitute).
type (
	// MgmtAgent serves the runtime-reconfiguration protocol over TCP.
	MgmtAgent = mgmt.Agent
	// MgmtClient is the matching client.
	MgmtClient = mgmt.Client
	// MgmtStore is a thread-safe key registry backing an agent.
	MgmtStore = mgmt.Store
)

// NewMgmtStore returns an empty management store.
func NewMgmtStore() *MgmtStore { return mgmt.NewStore() }

// NewMgmtAgent starts a management agent on addr.
func NewMgmtAgent(addr string, target mgmt.Target) (*MgmtAgent, error) {
	return mgmt.NewAgent(addr, target)
}

// MgmtDial connects to a management agent.
func MgmtDial(addr string) (*MgmtClient, error) { return mgmt.Dial(addr) }

// Tracing: per-request spans, latency blame, and the controller audit
// trail.
type (
	// Tracer is the head-sampling per-request tracer.
	Tracer = trace.Tracer
	// TraceConfig tunes sampling, reservoir size, and the audit trail.
	TraceConfig = trace.Config
	// Span is one traced request (root) or downstream call (child).
	Span = trace.Span
	// Segment is one attributed interval of a span's lifetime.
	Segment = trace.Segment
	// SegKind classifies a segment (queue wait, CPU service, ...).
	SegKind = trace.SegKind
	// TraceTierID buckets servers into client/web/app/cache/DB tiers.
	TraceTierID = trace.TierID
	// BlameRow is one (time window, request class) latency decomposition.
	BlameRow = trace.BlameRow
	// AuditEvent is one controller decision with its cause annotation.
	AuditEvent = trace.AuditEvent
	// AuditKind enumerates the audited decision types.
	AuditKind = trace.AuditKind
	// BlameResult bundles one traced controller run with its blame table.
	BlameResult = experiment.BlameResult
)

// NewTracer returns a tracer; a nil *Tracer is a safe no-op everywhere.
func NewTracer(cfg TraceConfig) *Tracer { return trace.New(cfg) }

// BlameSummary aggregates blame rows of one class over [from, to).
func BlameSummary(rows []BlameRow, class string, from, to Time) (BlameRow, bool) {
	return trace.BlameSummary(rows, class, from, to)
}

// WriteChromeTrace exports spans and audit marks as Chrome trace-event
// JSON, loadable in Perfetto or chrome://tracing.
func WriteChromeTrace(w io.Writer, roots []*Span, audit []AuditEvent) error {
	return trace.WriteChromeTrace(w, roots, audit)
}

// WriteWaterfall renders one request tree as an ASCII waterfall.
func WriteWaterfall(w io.Writer, root *Span) error { return trace.WriteWaterfall(w, root) }

// WriteBlameCSV exports a blame table as CSV.
func WriteBlameCSV(w io.Writer, mode string, rows []BlameRow) error {
	return trace.WriteBlameCSV(w, mode, rows)
}

// WriteAuditCSV exports a controller audit trail as CSV.
func WriteAuditCSV(w io.Writer, events []AuditEvent) error {
	return trace.WriteAuditCSV(w, events)
}

// BlameRuns compares traced EC2, DCM, and ConScale runs and returns each
// with its blame table.
func BlameRuns(seed uint64, duration Time, users int) []BlameResult {
	return experiment.BlameRuns(seed, duration, users)
}

// Telemetry: continuous metrics, OpenMetrics exposition, and SLO
// burn-rate monitoring.
type (
	// TelemetryRegistry holds counters, gauges, and histograms with a
	// zero-allocation hot path (and a zero-cost disabled mode).
	TelemetryRegistry = telemetry.Registry
	// Counter is a monotone event count.
	Counter = telemetry.Counter
	// Gauge is an instantaneous level.
	Gauge = telemetry.Gauge
	// Histogram is a log-linear latency distribution with bounded
	// relative error.
	Histogram = telemetry.Histogram
	// TelemetryScraper snapshots a registry on the simulation clock into
	// an OpenMetrics timeline.
	TelemetryScraper = telemetry.Scraper
	// SLOConfig parameterizes the burn-rate monitor (target, objective,
	// windows, burn threshold).
	SLOConfig = telemetry.SLOConfig
	// SLOMonitor raises and clears multi-window burn-rate alerts.
	SLOMonitor = telemetry.SLOMonitor
	// SLOAlert is one raised alert interval.
	SLOAlert = telemetry.Alert
	// PromFamily is one parsed exposition-format metric family.
	PromFamily = telemetry.PromFamily
	// PromSample is one parsed exposition-format sample line.
	PromSample = telemetry.PromSample
	// TelemetryOptions arms the telemetry layer on an experiment run.
	TelemetryOptions = experiment.TelemetryOptions
	// SLODetectionRun is one (trace, controller) cell of the detection
	// lead-time comparison.
	SLODetectionRun = experiment.SLORun
	// SLODetectionRow scores one run's alerts against ground truth.
	SLODetectionRow = experiment.SLORow
)

// NewTelemetryRegistry returns an enabled, empty registry.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// NewTelemetryScraper schedules sim-time scrapes of a registry.
func NewTelemetryScraper(eng *Engine, reg *TelemetryRegistry, every Time) *TelemetryScraper {
	return telemetry.NewScraper(eng, reg, every)
}

// TelemetryHandler serves a registry as Prometheus text at /metrics.
func TelemetryHandler(reg *TelemetryRegistry) http.Handler { return telemetry.Handler(reg) }

// DefaultSLOConfig returns the paper's web QoS target: p99 < 300 ms at a
// 99% objective with 15 s / 60 s burn windows.
func DefaultSLOConfig() SLOConfig { return telemetry.DefaultSLOConfig() }

// NewSLOMonitor returns a burn-rate monitor (zero-value config fields
// fall back to DefaultSLOConfig).
func NewSLOMonitor(cfg SLOConfig) *SLOMonitor { return telemetry.NewSLOMonitor(cfg) }

// ParseProm parses Prometheus/OpenMetrics text into metric families.
func ParseProm(r io.Reader) ([]PromFamily, error) { return telemetry.ParseProm(r) }

// SLODetection runs the detection lead-time comparison — EC2 vs DCM vs
// ConScale across the six bursty traces — at the paper's evaluation size.
func SLODetection(seed uint64) []SLODetectionRun { return experiment.SLODetection(seed) }

// RenderSLODetection prints the detection comparison table.
func RenderSLODetection(w io.Writer, runs []SLODetectionRun) { experiment.RenderSLO(w, runs) }

// Fluctuation forensics: always-on flight recorder, response-time
// episode detection, and causal attribution reports.
type (
	// Forensics bundles the flight recorder and the episode detector
	// behind one enable switch.
	Forensics = forensics.Forensics
	// ForensicsConfig sizes the recorder rings and tunes the detector;
	// zero values take the documented defaults.
	ForensicsConfig = forensics.Config
	// FlightRecorder keeps bounded rings of tier snapshots, controller
	// decisions, SCT estimates, fault activations, and span summaries.
	FlightRecorder = forensics.Recorder
	// EpisodeDetector finds response-time fluctuation episodes from the
	// windowed p99 against a learned baseline, with hysteresis.
	EpisodeDetector = forensics.Detector
	// EpisodeDetectorConfig tunes the detector thresholds and windows.
	EpisodeDetectorConfig = forensics.DetectorConfig
	// Episode is one detected fluctuation: onset, peak, recovery, depth.
	Episode = forensics.Episode
	// EpisodeCause is one ranked suspected cause with its evidence.
	EpisodeCause = forensics.Cause
	// EpisodeCauseKind classifies a suspected cause (fault, surge,
	// decision, SCT shift, unknown).
	EpisodeCauseKind = forensics.CauseKind
	// EpisodeAttribution is one episode with its ranked causes, blame
	// deltas, and controller reactions.
	EpisodeAttribution = forensics.EpisodeReport
	// ForensicsReport is a labelled run's full attribution output.
	ForensicsReport = forensics.Report
	// ForensicsTierSnapshot is one recorded per-tier occupancy sample.
	ForensicsTierSnapshot = forensics.TierSnapshot
	// ChromeTrace is the trace-event JSON document episode annotations
	// append to (see WriteChromeTrace for building one from spans).
	ChromeTrace = trace.ChromeTrace
)

// NewForensics returns an enabled recorder + detector pair. Arm it on an
// experiment via RunConfig.Forensics; the layer only reads, so armed
// runs stay byte-identical to bare ones.
func NewForensics(cfg ForensicsConfig) *Forensics { return forensics.New(cfg) }

// WriteForensicsJSON writes an attribution report as indented JSON.
func WriteForensicsJSON(w io.Writer, rep *ForensicsReport) error {
	return forensics.WriteJSON(w, rep)
}

// WriteForensicsASCII renders per-episode timelines, ranked causes,
// blame deltas, and reactions as plain text.
func WriteForensicsASCII(w io.Writer, rep *ForensicsReport) error {
	return forensics.WriteASCII(w, rep)
}

// AppendForensicsChrome adds an episode annotation track (slices +
// cause instants) to a Chrome trace-event document.
func AppendForensicsChrome(doc *ChromeTrace, rep *ForensicsReport) {
	forensics.AppendChrome(doc, rep)
}

// BuildChromeTrace builds the Chrome trace-event document from sampled
// span trees and the audit trail — the base document the forensics and
// twin annotation tracks append to.
func BuildChromeTrace(roots []*Span, audit []AuditEvent) ChromeTrace {
	return trace.BuildChromeTrace(roots, audit)
}

// FormatSimTime renders simulated seconds as a human-readable mm:ss.mmm
// clock (minutes unpadded past 99).
func FormatSimTime(t Time) string { return trace.FormatSimTime(t) }

// Scale mode: million-client populations over striped event execution.
type (
	// Striper runs many engines as shards synchronized at a conservative
	// lookahead horizon, with deterministic cross-shard messaging.
	Striper = des.Striper
	// Shard is one engine plus its cross-shard outbox inside a Striper.
	Shard = des.Shard
	// WorkloadClass is one request class of a streaming population
	// (name, arrival weight, mean think time).
	WorkloadClass = workload.Class
	// StreamStats are the O(1)-memory client statistics a streaming
	// generator maintains instead of per-request samples.
	StreamStats = workload.StreamStats
	// ScaleConfig describes one scale-mode run (mode, client count,
	// cells, trace, edge delay).
	ScaleConfig = experiment.ScaleConfig
	// ScaleResult captures a scale run's metrics: tails, goodput,
	// events/sec, peak heap.
	ScaleResult = experiment.ScaleResult
	// ScaleRow is the JSON row of a scale sweep report (BENCH_5 schema).
	ScaleRow = experiment.ScaleRow
)

// NewStriper returns a striped executor with n shards and the given
// conservative lookahead (minimum cross-shard delay).
func NewStriper(n int, lookahead Time) *Striper { return des.NewStriper(n, lookahead) }

// RunScale executes one scale-mode run: a streaming open-loop client
// population driving a fleet of cluster cells, one per stripe shard.
func RunScale(cfg ScaleConfig) *ScaleResult { return experiment.RunScale(cfg) }

// DefaultScaleConfig returns the standard scale-mode setup for a
// framework mode and client count (16 cells, 120 s, Large Variations).
func DefaultScaleConfig(mode Mode, clients int) ScaleConfig {
	return experiment.DefaultScaleConfig(mode, clients)
}

// WriteScaleReport writes a scale sweep as the BENCH_5 JSON schema.
func WriteScaleReport(w io.Writer, rows []ScaleRow) error {
	return experiment.WriteScaleReport(w, rows)
}

// RenderScale prints a scale sweep as an ASCII table.
func RenderScale(w io.Writer, rows []ScaleRow) { experiment.RenderScale(w, rows) }

// Controller zoo: pluggable scaling policies driven by a shared runtime,
// and the full-factorial tournament that ranks them.
type (
	// Controller is one pluggable scaling policy: it observes the
	// cluster once per decision tick and acts through an Actuator.
	Controller = controller.Controller
	// ControllerEnv is everything a controller may touch at Init time.
	ControllerEnv = controller.Env
	// ControllerActuator is the action surface controllers mutate
	// the cluster through (scale-out/in, pool resizes).
	ControllerActuator = controller.Actuator
	// ControllerObservation is the per-tick cluster view handed to Tick.
	ControllerObservation = controller.Observation
	// ControllerTierState is the per-tier slice of an observation.
	ControllerTierState = controller.TierState
	// ControllerTierEstimate is the tier-aggregated SCT signal.
	ControllerTierEstimate = controller.TierEstimate
	// ControllerOptions parameterizes controller construction.
	ControllerOptions = controller.Options
	// ControllerFactory builds one controller instance from options.
	ControllerFactory = controller.Factory
	// ControllerRuntime drives a controller against a cluster: metric
	// collection, SCT refresh, decision ticks, repair, audit, telemetry.
	ControllerRuntime = controller.Runtime
	// SCTSignal is the composable SCT concurrency-range estimator any
	// controller can consume.
	SCTSignal = controller.Signal
	// TournamentConfig describes the controllers × traces × tiers
	// factorial.
	TournamentConfig = experiment.TournamentConfig
	// TournamentResult holds every cell and the ranked standings.
	TournamentResult = experiment.TournamentResult
	// TournamentCell is one controller × trace × tier run, scored.
	TournamentCell = experiment.TournamentCell
	// TournamentRank is one controller's aggregate standing.
	TournamentRank = experiment.TournamentRank
)

// RegisterController adds a custom controller family to the zoo under a
// unique name; it panics on a duplicate. Registered controllers are
// buildable by NewController and play in RunTournament.
func RegisterController(name string, f ControllerFactory) { controller.Register(name, f) }

// NewController builds a registered controller by name ("ec2", "dcm",
// "conscale", "target-tracking", "step-scaling", "hybrid-mpc",
// "tabs-token", or any name added via RegisterController).
func NewController(name string, opts ControllerOptions) (Controller, error) {
	return controller.New(name, opts)
}

// ControllerNames returns every registered controller name, sorted.
func ControllerNames() []string { return controller.Names() }

// NewControllerRuntime attaches a controller to a cluster. Call Start
// before running the engine; legacy adapters ("ec2", "dcm", "conscale")
// delegate to the untouched scaling.Framework byte-identically.
func NewControllerRuntime(c *Cluster, ctrl Controller, opts ControllerOptions) *ControllerRuntime {
	return controller.NewRuntime(c, ctrl, opts)
}

// DefaultTournamentConfig returns the standard factorial: every
// registered controller × all six traces × two scale tiers.
func DefaultTournamentConfig() TournamentConfig { return experiment.DefaultTournamentConfig() }

// RunTournament executes the controller tournament and ranks the
// controllers by rank sum over p99 / SLO-burn minutes / VM-hours.
func RunTournament(cfg TournamentConfig) *TournamentResult { return experiment.RunTournament(cfg) }

// RenderTournament prints the ranked standings and per-cell table.
func RenderTournament(w io.Writer, res *TournamentResult) { experiment.RenderTournament(w, res) }

// WriteTournamentCSV writes every factorial cell as CSV.
func WriteTournamentCSV(w io.Writer, res *TournamentResult) { experiment.WriteTournamentCSV(w, res) }

// Analytical twin: an online MVA model solved beside the live
// simulation, invariant probes over steady-state regimes, and
// model-drift detection classified against forensics episodes.
type (
	// TwinConfig tunes the observer cadence, residual thresholds, and
	// drift hysteresis; zero values take the documented defaults.
	TwinConfig = twin.Config
	// TwinModel supplies the static inputs the live cluster cannot be
	// asked for: the workload, think time, and per-tier core counts.
	TwinModel = twin.Model
	// TwinObserver snapshots the cluster into a closed MVA network each
	// tick and streams predicted-vs-observed residuals.
	TwinObserver = twin.Observer
	// TwinSample is one tick's prediction, observation, and residuals
	// (or the regime-inapplicability reason).
	TwinSample = twin.Sample
	// TwinDrift is one raised model-drift flag with its classification
	// (transient inside a forensics episode vs model-bug candidate).
	TwinDrift = twin.DriftEvent
	// TwinObservation is the per-tick cluster view handed to Tick.
	TwinObservation = twin.Observation
	// QNetLiveState is a point-in-time cluster configuration that
	// SnapshotNetwork turns into a solvable MVA network.
	QNetLiveState = qnet.LiveState
	// QNetwork is a closed queueing network solved by exact MVA.
	QNetwork = qnet.Network
	// HypothesisConfig tunes the declared-hypothesis validation harness.
	HypothesisConfig = experiment.HypothesisConfig
	// HypothesisResult is one executed hypothesis: claim, regime,
	// verdict, and checked metrics with confidence intervals.
	HypothesisResult = experiment.HypothesisResult
	// HypothesisMetric is one checked quantity with its 95% CI and
	// declared bound.
	HypothesisMetric = experiment.HypoMetric
)

// NewTwin returns an enabled analytical-twin observer. Arm it on an
// experiment via RunConfig.Twin; the observer only reads, so armed runs
// stay byte-identical to bare ones.
func NewTwin(cfg TwinConfig, m TwinModel) *TwinObserver { return twin.New(cfg, m) }

// SnapshotNetwork builds the closed MVA network for a live cluster
// configuration (tier VM/core counts, workload demands, think time).
func SnapshotNetwork(s QNetLiveState) (*QNetwork, error) { return qnet.SnapshotNetwork(s) }

// WriteTwinCSV writes a twin-armed run's predicted-vs-observed sample
// series as CSV.
func WriteTwinCSV(w io.Writer, r *RunResult) error { return experiment.WriteTwinCSV(w, r) }

// AppendTwinChrome adds the twin annotation track — predicted and
// observed counters, inapplicability instants, drift slices — to a
// Chrome trace-event document.
func AppendTwinChrome(doc *ChromeTrace, samples []TwinSample, drifts []TwinDrift) {
	twin.AppendChrome(doc, samples, drifts)
}

// HypothesisIDs returns the declared hypothesis ids in execution order.
func HypothesisIDs() []string { return experiment.HypothesisIDs() }

// RunHypotheses executes the selected declared hypotheses (all when
// cfg.IDs is empty) as multi-seed sweeps and returns their verdicts.
func RunHypotheses(cfg HypothesisConfig) ([]HypothesisResult, error) {
	return experiment.RunHypotheses(cfg)
}

// RenderHypotheses prints the per-hypothesis FINDINGS table.
func RenderHypotheses(w io.Writer, results []HypothesisResult) error {
	return experiment.RenderHypotheses(w, results)
}

// Admission control: pluggable load shedding at each server's accept
// queue, and the policy × controller × trace frontier experiment that
// maps the p99-vs-goodput trade-off.
type (
	// AdmissionConfig selects and parameterises a policy family
	// ("always", "queue-cap", "codel", "priority"); zero fields take
	// the documented defaults.
	AdmissionConfig = admission.Config
	// AdmissionPolicy is the per-accept-queue decision contract:
	// Admit at queue entry, ObserveDequeue as sojourn feedback.
	AdmissionPolicy = admission.Policy
	// AdmissionClass is a request's shedding class, mapped from the
	// RUBBoS servlet mix (browse sheds before read-write).
	AdmissionClass = admission.Class
	// AdmissionMeter aggregates per-class shed rates over fixed
	// sim-time windows for telemetry.
	AdmissionMeter = admission.Meter
	// FrontierConfig describes the admission-policy × controller ×
	// trace factorial on the scale-mode skeleton.
	FrontierConfig = experiment.FrontierConfig
	// FrontierResult holds every frontier cell with p99/goodput deltas
	// against the matching always-admit baseline.
	FrontierResult = experiment.FrontierResult
	// FrontierRow is one trace × controller × policy cell.
	FrontierRow = experiment.FrontierRow
)

// Admission classes.
const (
	ClassBrowse    = admission.ClassBrowse
	ClassReadWrite = admission.ClassReadWrite
)

// NewAdmissionPolicy builds a fresh policy instance from the config.
// Each server needs its own instance — policies carry per-queue state.
func NewAdmissionPolicy(cfg AdmissionConfig) (AdmissionPolicy, error) { return admission.New(cfg) }

// ParseAdmission decodes a policy spec string such as
// "codel:target=50ms,interval=500ms" into an AdmissionConfig.
func ParseAdmission(spec string) (AdmissionConfig, error) { return admission.Parse(spec) }

// AdmissionPolicyNames lists the built-in policy families, sorted.
func AdmissionPolicyNames() []string { return admission.Names() }

// DefaultFrontierConfig returns the standard frontier factorial:
// four policies × four controllers × all six traces at 100k clients.
func DefaultFrontierConfig() FrontierConfig { return experiment.DefaultFrontierConfig() }

// RunFrontier executes the admission frontier factorial. Always-admit
// cells run with no policy installed — byte-identical to the pre-layer
// simulation — and serve as each (controller, trace) delta baseline.
func RunFrontier(cfg FrontierConfig) *FrontierResult { return experiment.RunFrontier(cfg) }

// RenderFrontier prints the frontier as an ASCII table grouped by
// trace and controller, best p99 first.
func RenderFrontier(w io.Writer, res *FrontierResult) { experiment.RenderFrontier(w, res) }

// WriteFrontierCSV writes every frontier cell as CSV.
func WriteFrontierCSV(w io.Writer, res *FrontierResult) { experiment.WriteFrontierCSV(w, res) }

// WriteFrontierReport writes the frontier as the BENCH_10 JSON schema.
func WriteFrontierReport(w io.Writer, res *FrontierResult) error {
	return experiment.WriteFrontierReport(w, res)
}
