// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §5 for the experiment index). Each benchmark
// regenerates the experiment's dataset and reports the headline quantities
// as custom metrics, so `go test -bench=. -benchmem` reproduces the whole
// evaluation and prints the rows the paper reports.
//
// Absolute numbers come from the simulator substrate, not the authors'
// VMware testbed; the shapes (who wins, where the knees fall, how they
// shift) are the reproduction targets recorded in EXPERIMENTS.md.
package conscale

import (
	"testing"

	"conscale/internal/cluster"
	"conscale/internal/experiment"
	"conscale/internal/scaling"
	"conscale/internal/sct"
	"conscale/internal/workload"
)

// BenchmarkFig01_EC2Fluctuation regenerates Fig. 1: response-time
// fluctuations of the 3-tier system under hardware-only EC2-AutoScaling.
func BenchmarkFig01_EC2Fluctuation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.Fig1(1)
		b.ReportMetric(res.MaxRT()*1000, "maxRT_ms")
		b.ReportMetric(res.P99*1000, "p99_ms")
		b.ReportMetric(float64(maxVMs(res)), "peak_VMs")
	}
}

func maxVMs(res *experiment.RunResult) int {
	m := 0
	for _, v := range res.VMs {
		if v > m {
			m = v
		}
	}
	return m
}

// BenchmarkFig03_TomcatConcurrencySweep regenerates Fig. 3: the optimal
// concurrency of Tomcat at 1 core (paper: 10), 2 cores (20), and 2 cores
// with the dataset doubled (15).
func BenchmarkFig03_TomcatConcurrencySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.Fig3(1)
		b.ReportMetric(float64(res.OneCore.Qlower), "knee_1core")
		b.ReportMetric(float64(res.TwoCore.Qlower), "knee_2core")
		b.ReportMetric(float64(res.TwoCoreEnlarged.Qlower), "knee_2core_bigdata")
	}
}

// BenchmarkFig05_FineGrainedMySQL regenerates Fig. 5: the 50 ms MySQL
// series over the 20 s after the 1/1/1 -> 1/2/1 scale-out.
func BenchmarkFig05_FineGrainedMySQL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.Fig5(1)
		maxConc, maxTP := 0.0, 0.0
		for _, s := range res.Samples {
			if s.Concurrency > maxConc {
				maxConc = s.Concurrency
			}
			if s.Throughput > maxTP {
				maxTP = s.Throughput
			}
		}
		b.ReportMetric(float64(len(res.Samples)), "windows")
		b.ReportMetric(maxConc, "peak_concurrency")
		b.ReportMetric(maxTP, "peak_qps")
	}
}

// BenchmarkFig06_ScatterCorrelation regenerates Fig. 6: MySQL's
// concurrency-throughput scatter over a 12-minute bursty run and the
// rational range the SCT model extracts from it.
func BenchmarkFig06_ScatterCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.Fig6(1)
		if res.OK {
			b.ReportMetric(float64(res.Estimate.Qlower), "Qlower")
			b.ReportMetric(float64(res.Estimate.Qupper), "Qupper")
			b.ReportMetric(res.Estimate.PlateauTP, "plateau_qps")
		}
		b.ReportMetric(float64(len(res.TPPoints)), "scatter_points")
	}
}

// BenchmarkFig07_VerticalScaling regenerates Fig. 7: the knee shifts from
// vertical scaling (a/d: 10 -> 20), dataset growth (b/e: 20 -> 15), and
// workload type (c/f: down to ~5 for the I/O-intensive mix).
func BenchmarkFig07_VerticalScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		panels := experiment.Fig7(1)
		names := []string{"a_db1core", "d_db2core", "b_app_orig", "e_app_big", "c_db_cpu", "f_db_io"}
		for j, p := range panels {
			b.ReportMetric(float64(p.Sweep.Qlower), "knee_"+names[j])
		}
	}
}

// BenchmarkFig09_Traces regenerates Fig. 9: the six bursty user traces.
func BenchmarkFig09_Traces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		traces := experiment.Fig9()
		peak := 0
		for _, tr := range traces {
			for _, v := range tr.Users {
				if v > peak {
					peak = v
				}
			}
		}
		b.ReportMetric(float64(len(traces)), "traces")
		b.ReportMetric(float64(peak), "peak_users")
	}
}

// BenchmarkFig10_EC2vsConScale regenerates Fig. 10: the full timeline
// comparison on the Large Variations trace.
func BenchmarkFig10_EC2vsConScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.Fig10(1)
		b.ReportMetric(res.Baseline.P99*1000, "ec2_p99_ms")
		b.ReportMetric(res.ConScale.P99*1000, "conscale_p99_ms")
		b.ReportMetric(float64(res.ConScale.Goodput-res.Baseline.Goodput), "goodput_gain")
	}
}

// BenchmarkTable1_TailLatency regenerates Table I: 95th/99th percentile
// response times for all six traces under both frameworks. One trace per
// sub-benchmark keeps the output aligned with the paper's columns.
func BenchmarkTable1_TailLatency(b *testing.B) {
	for _, tr := range workload.Names() {
		tr := tr
		b.Run(tr, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := experiment.DefaultRunConfig(scaling.EC2, tr)
				c := experiment.DefaultRunConfig(scaling.ConScale, tr)
				er := experiment.Run(e)
				cr := experiment.Run(c)
				b.ReportMetric(er.P95*1000, "ec2_p95_ms")
				b.ReportMetric(er.P99*1000, "ec2_p99_ms")
				b.ReportMetric(cr.P95*1000, "conscale_p95_ms")
				b.ReportMetric(cr.P99*1000, "conscale_p99_ms")
			}
		})
	}
}

// BenchmarkFig11_DCMvsConScale regenerates Fig. 11: ConScale against a DCM
// whose offline profile went stale after a system-state (dataset) change.
func BenchmarkFig11_DCMvsConScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.Fig11(1)
		b.ReportMetric(res.Baseline.P99*1000, "dcm_p99_ms")
		b.ReportMetric(res.ConScale.P99*1000, "conscale_p99_ms")
	}
}

// BenchmarkAblation_WindowSize (A1): sensitivity of the SCT estimate and
// end-to-end tails to the fine-grained measurement interval.
func BenchmarkAblation_WindowSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.AblationWindowSize(1)
		for _, r := range rows {
			b.ReportMetric(r.P99*1000, r.Label+"_p99_ms")
		}
	}
}

// BenchmarkAblation_QupperSetting (A2): the latency cost of choosing the
// upper bound of the rational range instead of Qlower.
func BenchmarkAblation_QupperSetting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.AblationQupper(1)
		for _, r := range rows {
			b.ReportMetric(r.P95*1000, r.Label+"_p95_ms")
		}
	}
}

// BenchmarkAblation_LBPolicy (A3): leastconn vs roundrobin balancing.
func BenchmarkAblation_LBPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.AblationLBPolicy(1)
		for _, r := range rows {
			b.ReportMetric(r.P95*1000, r.Label+"_p95_ms")
		}
	}
}

// BenchmarkAblation_Cooldown (A4): the "quick start but slow turn off"
// policy against aggressive scale-in.
func BenchmarkAblation_Cooldown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.AblationCooldown(1)
		for _, r := range rows {
			b.ReportMetric(r.P99*1000, r.Label+"_p99_ms")
		}
	}
}

// BenchmarkAblation_VerticalScaling (A5): horizontal vs vertical DB
// scaling under ConScale.
func BenchmarkAblation_VerticalScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.AblationVertical(1)
		for _, r := range rows {
			b.ReportMetric(r.P99*1000, r.Label+"_p99_ms")
		}
	}
}

// BenchmarkAblation_CacheTier (A6): the optional Memcached tier's effect
// on DB pressure and tails.
func BenchmarkAblation_CacheTier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.AblationCacheTier(1)
		for _, r := range rows {
			b.ReportMetric(r.P99*1000, r.Label+"_p99_ms")
		}
	}
}

// BenchmarkAblation_SLATrigger (A7): the QoS trigger's value in the
// under-allocation regime a stale DCM profile creates.
func BenchmarkAblation_SLATrigger(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.AblationSLATrigger(1)
		for _, r := range rows {
			b.ReportMetric(r.P99*1000, r.Label+"_p99_ms")
		}
	}
}

// benchChaosScenario runs one canonical fault scenario across the three
// controllers and reports each one's p99 — the robustness rows of the
// chaos evaluation (EXPERIMENTS.md "Chaos scenarios").
func benchChaosScenario(b *testing.B, name string) {
	for i := 0; i < b.N; i++ {
		rows := experiment.ChaosScenarioTable(1, name, 0)
		for _, r := range rows {
			b.ReportMetric(r.P99*1000, r.Mode.String()+"_p99_ms")
		}
	}
}

// BenchmarkChaos_Crashes: Poisson VM crashes across the app and DB tiers.
func BenchmarkChaos_Crashes(b *testing.B) { benchChaosScenario(b, "crashes") }

// BenchmarkChaos_Interference: noisy-neighbor CPU slowdown bursts on the
// app tier.
func BenchmarkChaos_Interference(b *testing.B) { benchChaosScenario(b, "interference") }

// BenchmarkChaos_NetJitter: latency windows on the app->db RPC edge.
func BenchmarkChaos_NetJitter(b *testing.B) { benchChaosScenario(b, "net-jitter") }

// BenchmarkChaos_Stragglers: 6x slower VM boots plus mid-run crashes.
func BenchmarkChaos_Stragglers(b *testing.B) { benchChaosScenario(b, "stragglers") }

// BenchmarkSimulatorEventRate measures the raw simulator throughput: how
// many end-to-end RUBBoS requests the DES processes per wall-clock second
// (the substrate's own performance, independent of any experiment).
func BenchmarkSimulatorEventRate(b *testing.B) {
	b.ReportAllocs()
	c := cluster.New(cluster.DefaultConfig())
	done := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Submit(func(ok bool) {
			if ok {
				done++
			}
		})
		if i%1024 == 1023 {
			c.Eng.Run()
		}
	}
	c.Eng.Run()
	if done == 0 {
		b.Fatal("no requests completed")
	}
}

// BenchmarkSCTEstimate measures the cost of one SCT estimation over a
// 3-minute window of 50 ms samples (3600 tuples) — the controller runs
// this every few seconds per server, so it must be cheap.
func BenchmarkSCTEstimate(b *testing.B) {
	res := experiment.Fig5(1) // reuse a real fine-grained sample set
	est := sct.New(sct.Config{MinTotalSamples: 10, MinDistinctBins: 2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = est.Estimate(res.Samples)
	}
}
