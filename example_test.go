package conscale_test

import (
	"fmt"
	"os"

	"conscale"
)

// ExampleNewCluster shows the minimal end-to-end loop: build the paper's
// 1/1/1 deployment, replay load, and read the tail latency. Runs are
// deterministic, so the output is stable.
func ExampleNewCluster() {
	c := conscale.NewCluster(conscale.DefaultClusterConfig())
	gen := conscale.NewGenerator(c.Eng, conscale.NewRand(1), conscale.GeneratorConfig{
		Trace:     conscale.NewConstantTrace(300, 20*conscale.Second),
		ThinkTime: 3,
	}, c.Submit)
	gen.Start()
	c.Eng.RunUntil(20 * conscale.Second)
	fmt.Printf("served %v requests: %v\n", gen.GoodputTotal() > 1000, gen.ErrorRate() == 0)
	// Output: served true requests: true
}

// ExampleSCTEstimator feeds synthetic three-stage tuples to the SCT model
// and reads back the rational concurrency range.
func ExampleSCTEstimator() {
	var samples []conscale.WindowSample
	for q := 1; q <= 40; q++ {
		tp := 1000.0
		if q < 10 {
			tp = 100 * float64(q) // ascending stage
		} else if q > 25 {
			tp = 1000 - 30*float64(q-25) // descending stage
		}
		for i := 0; i < 4; i++ {
			samples = append(samples, conscale.WindowSample{
				Concurrency: float64(q),
				Throughput:  tp,
				RT:          float64(q) / tp,
				Completions: 10,
			})
		}
	}
	est := conscale.NewSCTEstimator(conscale.DefaultSCTConfig())
	e, ok := est.Estimate(samples)
	fmt.Println(ok, e.Optimal() >= 8 && e.Optimal() <= 12, e.Saturated)
	// Output: true true true
}

// ExampleNewTrace samples one of the six bursty evaluation traces.
func ExampleNewTrace() {
	tr := conscale.NewTrace(conscale.TraceBigSpike, 7500, 720*conscale.Second)
	fmt.Println(tr.Peak() > 6000, tr.UsersAt(0) < 3000)
	// Output: true true
}

// ExampleNewChaosSchedule injects a crash and an interference window into
// a run and reads back what the injector actually hit.
func ExampleNewChaosSchedule() {
	c := conscale.NewCluster(conscale.DefaultClusterConfig())
	sched := conscale.NewChaosSchedule(
		conscale.ChaosCrash(5*conscale.Second, conscale.TierDB, 0),
		conscale.ChaosInterference(8*conscale.Second, 10*conscale.Second,
			conscale.TierApp, conscale.ChaosWholeTier, 2.5),
	)
	inj := conscale.NewChaosInjector(c, sched, 42)
	inj.Arm()
	c.Eng.RunUntil(20 * conscale.Second)
	for _, w := range inj.Windows() {
		fmt.Println(w)
	}
	// Output:
	// [   5.0s] crash mysql1
	// [   8.0-18.0s] interference x2.5 on tomcat1
}

// ExampleNewFramework runs ConScale against a short burst and reports that
// scaling actions happened.
func ExampleNewFramework() {
	cfg := conscale.DefaultClusterConfig()
	cfg.PrepDelay = 5 * conscale.Second
	c := conscale.NewCluster(cfg)
	fw := conscale.NewFramework(c, conscale.DefaultScalingConfig(conscale.ModeConScale))
	fw.Start()
	gen := conscale.NewGenerator(c.Eng, conscale.NewRand(2), conscale.GeneratorConfig{
		Trace:     conscale.NewTrace(conscale.TraceSlowlyVarying, 2500, 150*conscale.Second),
		ThinkTime: 1,
	}, c.Submit)
	gen.Start()
	c.Eng.RunUntil(150 * conscale.Second)
	fw.Stop()
	fmt.Println(len(fw.Events()) > 0, c.ReadyCount(conscale.TierApp) >= 2)
	// Output: true true
}

// ExampleNewTelemetryRegistry registers instruments and renders a
// Prometheus text snapshot.
func ExampleNewTelemetryRegistry() {
	reg := conscale.NewTelemetryRegistry()
	reg.Counter("example_requests_total", "Requests served.", "server", "web1").Add(3)
	reg.Gauge("example_queue_depth", "Requests waiting.", "server", "web1").Set(2)
	reg.WriteProm(os.Stdout)
	// Output:
	// # HELP example_requests_total Requests served.
	// # TYPE example_requests_total counter
	// example_requests_total{server="web1"} 3
	// # HELP example_queue_depth Requests waiting.
	// # TYPE example_queue_depth gauge
	// example_queue_depth{server="web1"} 2
}

// ExampleNewSLOMonitor streams response times through the burn-rate
// monitor: a 60 s half-bad burst raises one alert that clears after the
// stream recovers.
func ExampleNewSLOMonitor() {
	mon := conscale.NewSLOMonitor(conscale.DefaultSLOConfig())
	for sec := 0; sec < 240; sec++ {
		for i := 0; i < 20; i++ {
			rt := 0.05
			if sec >= 60 && sec < 120 && i < 10 {
				rt = 0.8 // half the requests blow the 300 ms target
			}
			mon.Observe(conscale.Time(sec), rt, true)
		}
	}
	alerts := mon.Alerts()
	a := alerts[0]
	fmt.Printf("alerts=%d raisedNearBurst=%v cleared=%v\n",
		len(alerts), a.Start >= 60 && a.Start <= 75, !a.Active)
	// Output: alerts=1 raisedNearBurst=true cleared=true
}
