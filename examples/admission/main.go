// Admission control: the p99-vs-goodput frontier in miniature. The
// same Big Spike surge is replayed under slow hardware-only
// EC2-AutoScaling four times — once with every admission-policy family
// guarding the web and app accept queues:
//
//   - always: admit everything (byte-identical to running no policy);
//   - queue-cap: shed any class once the accept queue exceeds a cap;
//   - codel: shed when accept-queue sojourn stays above target for a
//     full interval, then on a shrinking schedule (CoDel's control law);
//   - priority: shed read-only browse interactions at a low queue
//     threshold and state-changing read-write ones only at the cap.
//
// During the surge the cap-style shedders trade a few percent of
// goodput for an order-of-magnitude p99 cut; CoDel is gentler on both
// axes. The full factorial (policies × controllers × traces at 100k
// clients) lives in `go run ./cmd/experiments -run frontier`.
//
// Run with:
//
//	go run ./examples/admission
package main

import (
	"fmt"
	"os"

	"conscale"
)

func main() {
	fmt.Println("replaying big-spike under EC2-AutoScaling with each admission policy on web+app")
	fmt.Println()

	specs := []string{
		"always",
		"queue-cap:cap=300",
		"codel:target=100ms,interval=200ms",
		"priority:cap=300,browse=75",
	}

	run := func(spec string) *conscale.RunResult {
		cfg := conscale.DefaultRunConfig(conscale.ModeEC2, conscale.TraceBigSpike)
		cfg.Seed = 1
		cfg.Duration = 300 * conscale.Second
		cfg.MaxUsers = 7500
		pc, err := conscale.ParseAdmission(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Admission = map[conscale.Tier]conscale.AdmissionConfig{
			conscale.TierWeb: pc,
			conscale.TierApp: pc,
		}
		return conscale.Run(cfg)
	}

	var base *conscale.RunResult
	fmt.Println("  policy                               p99        Δp99   goodput   Δgood   sheds (browse/rw)")
	for _, spec := range specs {
		res := run(spec)
		if base == nil {
			base = res // the always-admit row anchors the deltas
		}
		dp99 := 100 * (res.P99 - base.P99) / base.P99
		dgood := 100 * float64(res.Goodput-base.Goodput) / float64(base.Goodput)
		fmt.Printf("  %-34s %7.0fms  %+6.1f%%  %8d  %+5.2f%%  %d (%d/%d)\n",
			spec, res.P99*1000, dp99, res.Goodput, dgood,
			res.Sheds, res.ShedsByClass[conscale.ClassBrowse], res.ShedsByClass[conscale.ClassReadWrite])
	}

	fmt.Println()
	fmt.Println("always-admit sheds nothing by construction; the shedders buy their tail")
	fmt.Println("latency with deliberate, class-aware drops at the accept queue.")

	if base.Sheds != 0 {
		fmt.Fprintln(os.Stderr, "always-admit run shed requests")
		os.Exit(1)
	}
}
