// Chaos: controller robustness under injected cloud faults. The Large
// Variations trace is replayed against identical clusters scaled by
// EC2-AutoScaling and by ConScale, while the same fault schedule hits
// both: the whole DB tier crashes mid-run, and a noisy neighbor slows an
// app VM's CPU by 2.5x for a minute. The frameworks must detect the dark
// tier and re-provision it; ConScale additionally re-fits soft resources
// to the degraded capacity.
//
// Run with:
//
//	go run ./examples/chaos
package main

import (
	"fmt"

	"conscale"
)

func main() {
	const duration = 720 * conscale.Second
	fmt.Println("replaying Large Variations with a mid-run DB-tier crash (t=250s)")
	fmt.Println("and a 2.5x CPU-interference burst on the app tier (t=400-460s)...")
	fmt.Println()

	schedule := func() *conscale.ChaosSchedule {
		return conscale.NewChaosSchedule(
			conscale.ChaosCrash(250*conscale.Second, conscale.TierDB, conscale.ChaosWholeTier),
			conscale.ChaosInterference(400*conscale.Second, 60*conscale.Second,
				conscale.TierApp, conscale.ChaosPickRandom, 2.5),
		)
	}

	type outcome struct {
		mode     conscale.Mode
		p95, p99 float64
		errRate  float64
		faults   int
	}
	var results []outcome

	for _, mode := range []conscale.Mode{conscale.ModeEC2, conscale.ModeConScale} {
		cfg := conscale.DefaultRunConfig(mode, conscale.TraceLargeVariations)
		cfg.Seed = 1
		cfg.Duration = duration
		cfg.Chaos = schedule() // same faults for both controllers
		res := conscale.Run(cfg)
		results = append(results, outcome{
			mode:    mode,
			p95:     res.P95,
			p99:     res.P99,
			errRate: res.ErrorRate,
			faults:  len(res.FaultWindows),
		})
		for _, w := range res.FaultWindows {
			fmt.Printf("  %-18s %s\n", mode, w)
		}
	}

	fmt.Println()
	fmt.Printf("%-18s %10s %10s %8s %8s\n", "framework", "p95", "p99", "errors", "faults")
	for _, r := range results {
		fmt.Printf("%-18s %8.0fms %8.0fms %7.1f%% %8d\n",
			r.mode, r.p95*1000, r.p99*1000, r.errRate*100, r.faults)
	}

	e, c := results[0], results[1]
	fmt.Printf("\nUnder identical faults ConScale holds p99 %.1fx lower than hardware-only\n", e.p99/c.p99)
	fmt.Println("scaling: both repair the crashed DB tier, but only ConScale re-fits the")
	fmt.Println("thread and connection pools to the post-fault capacity instead of keeping")
	fmt.Println("settings tuned for hardware that no longer exists.")
}
