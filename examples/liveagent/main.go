// Live agent: the runtime soft-resource reconfiguration path of the
// paper's Section IV-A. The paper extends Tomcat's JMX service so the
// thread pool and DB connection pool can be resized without a restart;
// here the equivalent TCP management agent fronts a running simulation,
// and a client shrinks the Tomcat pool mid-run while load is flowing.
//
// Run with:
//
//	go run ./examples/liveagent
package main

import (
	"fmt"
	"log"
	"strconv"
	"sync"

	"conscale"
)

func main() {
	c := conscale.NewCluster(conscale.DefaultClusterConfig())

	// The simulation is single-threaded; the agent serves real TCP
	// connections. Bridge the two with a mutex-protected pending-change
	// list that the simulation applies at its next 1-second tick —
	// exactly how a real agent thread hands work to a server's event loop.
	var (
		mu      sync.Mutex
		pending []func()
	)
	queue := func(fn func()) {
		mu.Lock()
		pending = append(pending, fn)
		mu.Unlock()
	}
	c.Eng.Every(conscale.Second, func() {
		mu.Lock()
		jobs := pending
		pending = nil
		mu.Unlock()
		for _, fn := range jobs {
			fn()
		}
	})

	// Expose the soft resources through the management store. Reads are
	// also queued through the simulation tick for a consistent view.
	store := conscale.NewMgmtStore()
	var view struct {
		sync.Mutex
		appThreads, dbConns int
	}
	refreshView := func() {
		_, app, db := c.SoftResources()
		view.Lock()
		view.appThreads, view.dbConns = app, db
		view.Unlock()
	}
	refreshView()
	c.Eng.Every(conscale.Second, refreshView)

	store.Register("app.threads",
		func() string {
			view.Lock()
			defer view.Unlock()
			return strconv.Itoa(view.appThreads)
		},
		func(raw string) error {
			n, err := strconv.Atoi(raw)
			if err != nil || n <= 0 {
				return fmt.Errorf("app.threads must be a positive integer, got %q", raw)
			}
			queue(func() { c.SetAppThreads(n) })
			return nil
		})
	store.Register("db.conns",
		func() string {
			view.Lock()
			defer view.Unlock()
			return strconv.Itoa(view.dbConns)
		},
		func(raw string) error {
			n, err := strconv.Atoi(raw)
			if err != nil || n <= 0 {
				return fmt.Errorf("db.conns must be a positive integer, got %q", raw)
			}
			queue(func() { c.SetDBConns(n) })
			return nil
		})

	agent, err := conscale.NewMgmtAgent("127.0.0.1:0", store)
	if err != nil {
		log.Fatal(err)
	}
	defer agent.Close()
	fmt.Printf("management agent listening on %s\n", agent.Addr())

	// Load the system while we reconfigure it.
	gen := conscale.NewGenerator(c.Eng, conscale.NewRand(7), conscale.GeneratorConfig{
		Trace:     conscale.NewConstantTrace(1200, 120*conscale.Second),
		ThinkTime: 3,
	}, c.Submit)
	gen.Start()

	client, err := conscale.MgmtDial(agent.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	keys, err := client.Keys()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agent exposes keys: %v\n", keys)

	// First simulated minute at the (over-provisioned) default pool.
	c.Eng.RunUntil(60 * conscale.Second)
	before, err := client.Get("app.threads")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=60s: app.threads=%s, tomcat1 active=%d\n",
		before, c.Servers(conscale.TierApp)[0].Active())

	// Shrink the Tomcat pool to the SCT-style optimum — live.
	if err := client.Set("app.threads", "12"); err != nil {
		log.Fatal(err)
	}
	// And reject a bad value to show validation.
	if err := client.Set("db.conns", "-1"); err != nil {
		fmt.Printf("rejected bad update as expected: %v\n", err)
	}

	c.Eng.RunUntil(120 * conscale.Second)
	after, err := client.Get("app.threads")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=120s: app.threads=%s, tomcat1 active=%d\n",
		after, c.Servers(conscale.TierApp)[0].Active())
	fmt.Printf("run completed: %d requests, p95=%.1fms\n",
		gen.GoodputTotal(), gen.TailLatency(95, 0)*1000)
}
