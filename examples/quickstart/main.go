// Quickstart: build the paper's 1/1/1 RUBBoS deployment, drive it with a
// closed-loop user population for one simulated minute, and ask the SCT
// model for MySQL's rational concurrency range.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"conscale"
)

func main() {
	// The paper's evaluation setup: one Apache, one Tomcat, one MySQL,
	// each on a 1-vCPU VM, soft resources 1000-60-40, leastconn balancing.
	c := conscale.NewCluster(conscale.DefaultClusterConfig())

	// A metric warehouse plays the role of the per-VM monitoring agents:
	// it receives each server's 50 ms {concurrency, throughput, RT} tuples.
	warehouse := conscale.NewWarehouse(300 * conscale.Second)
	c.Eng.Every(conscale.Second, func() { c.CollectInto(warehouse) })

	// 4000 concurrent users with 3 s mean think time — enough to push the
	// single-Tomcat deployment through all three stages of its curve.
	trace := conscale.NewConstantTrace(4000, 60*conscale.Second)
	gen := conscale.NewGenerator(c.Eng, conscale.NewRand(42), conscale.GeneratorConfig{
		Trace:     trace,
		ThinkTime: 3,
	}, c.Submit)
	gen.Start()

	// One simulated minute runs in well under a second of wall clock.
	c.Eng.RunUntil(60 * conscale.Second)
	c.CollectInto(warehouse)

	fmt.Printf("completed %d requests, p95 = %.1f ms, p99 = %.1f ms\n",
		gen.GoodputTotal(),
		gen.TailLatency(95, 0)*1000,
		gen.TailLatency(99, 0)*1000)

	// Feed each server's fine-grained tuples to the SCT model.
	est := conscale.NewSCTEstimator(conscale.SCTConfig{
		CollectionWindow: 60 * conscale.Second,
		MinTotalSamples:  30,
		MinDistinctBins:  3,
	})
	for _, name := range []string{"tomcat1", "mysql1"} {
		e, ok := est.Estimate(warehouse.FineSince(name, 0))
		if !ok {
			fmt.Printf("%s: not enough concurrency diversity for an estimate yet\n", name)
			continue
		}
		fmt.Printf("%s rational concurrency range: [%d, %d], plateau %.0f req/s\n",
			name, e.Qlower, e.Qupper, e.PlateauTP)
		fmt.Printf("%s recommended pool size: %d (saturation observed: %v)\n",
			name, e.Optimal(), e.Saturated)
	}
}
