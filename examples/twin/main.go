// Analytical twin: online MVA predictions beside the live simulation.
// A constant 2500-user load is replayed under EC2-AutoScaling with the
// twin observer armed. Every 5 simulated seconds the twin snapshots the
// live configuration (ready VMs, cores, workload demands), solves it as
// a closed MVA queueing network, and compares the prediction against
// the measured window: response time, throughput, per-tier utilization,
// Little's law, and flow conservation. Transitions (the EC2 scale-out
// the 2500-user load triggers) are gated "regime inapplicable" instead
// of being scored — the twin only claims accuracy where the steady-state
// model applies.
//
// Run with:
//
//	go run ./examples/twin
package main

import (
	"fmt"
	"os"

	"conscale"
)

func main() {
	fmt.Println("replaying constant 2500-user load under EC2-AutoScaling with the analytical twin armed")
	fmt.Println()

	cfg := conscale.DefaultRunConfig(conscale.ModeEC2, conscale.TraceConstant)
	cfg.Seed = 1
	cfg.Duration = 300 * conscale.Second
	cfg.MaxUsers = 2500
	// The twin only reads: arming it (plus the tracer that lands its
	// drift events on the audit trail and the forensics layer that
	// classifies them) leaves the trajectory byte-identical to a bare run.
	cfg.Tracing = &conscale.TraceConfig{SampleRate: 1.0 / 8}
	cfg.Forensics = &conscale.ForensicsConfig{}
	cfg.Twin = &conscale.TwinConfig{}

	res := conscale.Run(cfg)
	tw := res.Twin
	fmt.Printf("run done: p99 %.0f ms; twin ticks %d, applicable %d, drift flags %d\n\n",
		res.P99*1000, tw.Ticks(), tw.Applicable(), tw.DriftCount())

	fmt.Println("  time    clients  obs rt   pred rt  rel err  little   utilgap  state")
	var relSum float64
	var relN int
	for _, s := range tw.Samples() {
		state := "ok"
		if !s.Applicable {
			state = s.Reason
		} else {
			relSum += s.RTRelErr
			relN++
		}
		if int(s.Time)%30 != 0 && s.Applicable {
			continue // print every 6th applicable tick; transitions always
		}
		if s.Applicable {
			fmt.Printf("  %5.0fs  %7d  %5.1fms  %5.1fms  %7.3f  %7.3f  %7.3f  %s\n",
				float64(s.Time), s.Clients, s.ObsMeanRT*1000, s.PredRT*1000,
				s.RTRelErr, s.LittlesResidual, s.UtilGap, state)
		} else {
			fmt.Printf("  %5.0fs  %7d  %s\n", float64(s.Time), s.Clients, state)
		}
	}
	if relN > 0 {
		fmt.Printf("\nmean RT relative error over %d applicable ticks: %.3f\n", relN, relSum/float64(relN))
	}

	// The same samples feed the CSV artifact and the Perfetto "twin"
	// annotation track (predicted vs observed counters, drift slices).
	doc := conscale.BuildChromeTrace(res.Tracer.Slowest(), res.Audit)
	conscale.AppendTwinChrome(&doc, tw.Samples(), tw.Drifts())
	fmt.Printf("perfetto document carries %d trace events (twin counters + annotations)\n", len(doc.TraceEvents))

	if tw.DriftCount() != 0 {
		fmt.Fprintln(os.Stderr, "unexpected model drift on a calm run")
		os.Exit(1)
	}
}
