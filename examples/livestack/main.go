// Live stack: the SCT pipeline on real servers. Two actual HTTP servers
// (an app tier calling a db tier synchronously, real goroutine thread
// pools, real CPU) are driven by a closed-loop load generator at rising
// concurrency; the app server's 50 ms tuples then feed the same SCT
// estimator the simulator uses. Unlike the other examples this one runs
// in real time (a few seconds).
//
// Run with:
//
//	go run ./examples/livestack
package main

import (
	"fmt"
	"log"
	"time"

	"conscale/internal/live"
	"conscale/internal/sct"
)

func main() {
	db, err := live.StartServer(live.ServerConfig{
		Name:            "db",
		DwellPerRequest: 2 * time.Millisecond,
		ThreadLimit:     64,
		QueueLimit:      512,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	app, err := live.StartServer(live.ServerConfig{
		Name:            "app",
		CPUPerRequest:   300 * time.Microsecond,
		DwellPerRequest: time.Millisecond,
		Downstream:      db.URL(),
		DownstreamCalls: 2,
		ThreadLimit:     48,
		QueueLimit:      512,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()

	fmt.Printf("app tier at %s -> db tier at %s\n", app.URL(), db.URL())
	fmt.Printf("%8s %12s %10s\n", "users", "throughput", "mean RT")
	for _, users := range []int{1, 2, 4, 8, 16, 32} {
		res := live.RunClosedLoop(app.URL(), users, 0, 400*time.Millisecond)
		tp := float64(res.Completed) / 0.4
		fmt.Printf("%8d %10.0f/s %10v\n", users, tp, res.MeanRT.Round(100*time.Microsecond))
	}

	samples := app.Samples()
	fmt.Printf("\ncollected %d fine-grained windows from the live app server\n", len(samples))
	est := sct.New(sct.Config{MinTotalSamples: 20, MinDistinctBins: 3, MinSamplesPerBin: 2})
	if e, ok := est.Estimate(samples); ok {
		fmt.Printf("SCT estimate: rational range [%d, %d], plateau %.0f req/s, recommended pool %d\n",
			e.Qlower, e.Qupper, e.PlateauTP, e.Optimal())
	} else {
		fmt.Println("SCT estimate: not enough concurrency diversity (try a longer run)")
	}
}
