// Live stack: the SCT pipeline on real servers. Two actual HTTP servers
// (an app tier calling a db tier synchronously, real goroutine thread
// pools, real CPU) are driven by a closed-loop load generator at rising
// concurrency; the app server's 50 ms tuples then feed the same SCT
// estimator the simulator uses. Unlike the other examples this one runs
// in real time (a few seconds).
//
// Both servers also publish their state on a telemetry registry served as
// Prometheus text at /metrics — point a stock Prometheus at the printed
// address (or curl it) while the load runs. Pass -hold to keep the stack
// up after the sweep for interactive scraping.
//
// Run with:
//
//	go run ./examples/livestack
//	go run ./examples/livestack -hold   # keep serving /metrics until ^C
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"conscale/internal/live"
	"conscale/internal/sct"
	"conscale/internal/telemetry"
)

func main() {
	hold := flag.Bool("hold", false, "keep the stack and /metrics endpoint up until interrupted")
	flag.Parse()

	db, err := live.StartServer(live.ServerConfig{
		Name:            "db",
		DwellPerRequest: 2 * time.Millisecond,
		ThreadLimit:     64,
		QueueLimit:      512,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	app, err := live.StartServer(live.ServerConfig{
		Name:            "app",
		CPUPerRequest:   300 * time.Microsecond,
		DwellPerRequest: time.Millisecond,
		Downstream:      db.URL(),
		DownstreamCalls: 2,
		ThreadLimit:     48,
		QueueLimit:      512,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()

	// One registry covers both tiers; the metric names match the
	// simulator's, so the same dashboard reads either mode.
	reg := telemetry.NewRegistry()
	app.RegisterTelemetry(reg)
	db.RegisterTelemetry(reg)
	metricsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer metricsLn.Close()
	mux := http.NewServeMux()
	mux.Handle("/metrics", telemetry.Handler(reg))
	go http.Serve(metricsLn, mux) //nolint:errcheck // returns on Close

	fmt.Printf("app tier at %s -> db tier at %s\n", app.URL(), db.URL())
	fmt.Printf("metrics at http://%s/metrics\n", metricsLn.Addr())
	fmt.Printf("%8s %12s %10s\n", "users", "throughput", "mean RT")
	for _, users := range []int{1, 2, 4, 8, 16, 32} {
		res := live.RunClosedLoop(app.URL(), users, 0, 400*time.Millisecond)
		tp := float64(res.Completed) / 0.4
		fmt.Printf("%8d %10.0f/s %10v\n", users, tp, res.MeanRT.Round(100*time.Microsecond))
	}

	samples := app.Samples()
	fmt.Printf("\ncollected %d fine-grained windows from the live app server\n", len(samples))
	est := sct.New(sct.Config{MinTotalSamples: 20, MinDistinctBins: 3, MinSamplesPerBin: 2})
	if e, ok := est.Estimate(samples); ok {
		fmt.Printf("SCT estimate: rational range [%d, %d], plateau %.0f req/s, recommended pool %d\n",
			e.Qlower, e.Qupper, e.PlateauTP, e.Optimal())
	} else {
		fmt.Println("SCT estimate: not enough concurrency diversity (try a longer run)")
	}

	if *hold {
		fmt.Println("holding; scrape /metrics or ^C to exit")
		select {}
	}
}
