// Profiling: the motivation experiment of the paper's Section II (Fig. 3).
// A Tomcat server is stressed at fixed concurrency levels under three
// pre-profiling conditions — 1 vCPU, 2 vCPUs, and 2 vCPUs with a doubled
// dataset — showing that the optimal concurrency setting is not a constant:
// it moves with the hardware allocation and the system state.
//
// Run with:
//
//	go run ./examples/profiling
package main

import (
	"fmt"

	"conscale"
	"conscale/internal/experiment"
)

func main() {
	conditions := []struct {
		label   string
		cores   int
		dataset float64
	}{
		{"Tomcat, 1 vCPU, original dataset", 1, 1},
		{"Tomcat, 2 vCPUs, original dataset", 2, 1},
		{"Tomcat, 2 vCPUs, doubled dataset", 2, 2},
	}

	for _, cond := range conditions {
		cfg := experiment.DefaultSweepConfig(experiment.TargetApp)
		cfg.Cores = cond.cores
		cfg.DatasetScale = cond.dataset
		res := conscale.Sweep(cfg)

		fmt.Printf("%s\n", cond.label)
		fmt.Printf("  %6s %12s %10s\n", "conc", "throughput", "resp time")
		for _, p := range res.Points {
			marker := "  "
			if p.Level == res.Qlower {
				marker = "->" // the knee: minimum concurrency at max throughput
			}
			fmt.Printf("%s %5d %10.0f/s %8.2f ms\n", marker, p.Level, p.Throughput, p.MeanRT*1000)
		}
		fmt.Printf("  optimal concurrency setting (Qlower): %d\n\n", res.Qlower)
	}

	fmt.Println("The knee doubles with the second vCPU and shifts back down when the dataset")
	fmt.Println("grows — the reason static pre-profiled pool sizes go stale (paper Section II-B).")
}
