// Bursty scaling: the paper's headline experiment in miniature. The same
// bursty trace is replayed against two identical clusters — one scaled by
// hardware-only EC2-AutoScaling, one by ConScale — and the tail latencies
// are compared (paper Fig. 10 / Table I).
//
// Run with:
//
//	go run ./examples/burstyscaling
package main

import (
	"fmt"

	"conscale"
)

func main() {
	fmt.Println("replaying the Large Variations trace (7500 users, 12 simulated minutes)...")
	fmt.Println()

	type outcome struct {
		mode     conscale.Mode
		p95, p99 float64
		maxRT    float64
		goodput  int
		events   int
	}
	var results []outcome

	for _, mode := range []conscale.Mode{conscale.ModeEC2, conscale.ModeConScale} {
		cfg := conscale.DefaultRunConfig(mode, conscale.TraceLargeVariations)
		cfg.Seed = 1 // same seed: identical workload, identical hardware
		res := conscale.Run(cfg)
		results = append(results, outcome{
			mode:    mode,
			p95:     res.P95,
			p99:     res.P99,
			maxRT:   res.MaxRT(),
			goodput: res.Goodput,
			events:  len(res.Events),
		})
	}

	fmt.Printf("%-18s %10s %10s %10s %10s\n", "framework", "p95", "p99", "max RT", "goodput")
	for _, r := range results {
		fmt.Printf("%-18s %8.0fms %8.0fms %8.0fms %10d\n",
			r.mode, r.p95*1000, r.p99*1000, r.maxRT*1000, r.goodput)
	}

	e, c := results[0], results[1]
	fmt.Printf("\nConScale cuts p95 by %.1fx and p99 by %.1fx versus hardware-only scaling,\n",
		e.p95/c.p95, e.p99/c.p99)
	fmt.Println("because after each VM change it immediately re-fits the thread and connection")
	fmt.Println("pools to the SCT model's estimate of each server's optimal concurrency.")
}
