// Forensics: flight recorder + episode detection + causal attribution.
// The Big Spike trace is replayed under EC2-AutoScaling with the
// always-on forensics layer armed and two known disturbances injected: a
// 2.5x CPU-interference burst across the whole app tier and a DB edge
// jitter burst. The episode detector segments the windowed p99 into
// fluctuation episodes, and the attribution pipeline lines each one up
// against the flight recorder's decisions, faults, and SCT transitions
// to rank the suspected causes — which should name exactly the faults we
// injected.
//
// Run with:
//
//	go run ./examples/forensics
package main

import (
	"fmt"
	"os"

	"conscale"
)

func main() {
	const duration = 300 * conscale.Second
	fmt.Println("replaying Big Spike under EC2-AutoScaling with the forensics layer armed")
	fmt.Println("injected: 2.5x app-tier interference (t=90-135s), 80ms DB jitter (t=225-265s)")
	fmt.Println()

	cfg := conscale.DefaultRunConfig(conscale.ModeEC2, conscale.TraceBigSpike)
	cfg.Seed = 1
	cfg.Duration = duration
	cfg.MaxUsers = 5000
	// The forensics layer only reads: arming it (plus the tracer that
	// feeds its span summaries and blame diffs) leaves the simulated
	// trajectory byte-identical to a bare run.
	cfg.Tracing = &conscale.TraceConfig{SampleRate: 1.0 / 8}
	cfg.Forensics = &conscale.ForensicsConfig{}
	cfg.Chaos = conscale.NewChaosSchedule(
		conscale.ChaosInterference(90*conscale.Second, 45*conscale.Second,
			conscale.TierApp, conscale.ChaosWholeTier, 2.5),
		conscale.ChaosJitter(225*conscale.Second, 40*conscale.Second,
			conscale.TierDB, 80*conscale.Millisecond),
	)

	res := conscale.Run(cfg)
	fmt.Printf("run done: p99 %.0f ms, %d fault windows\n\n", res.P99*1000, len(res.FaultWindows))

	// The attribution report: every detected episode with its ranked
	// suspected causes, blame deltas, and the controller's reactions.
	rep := res.Forensics.Report("big-spike/ec2", res.Tracer.BlameTable())
	if err := conscale.WriteForensicsASCII(os.Stdout, rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	for i, er := range rep.Episodes {
		top := er.TopCause()
		fmt.Printf("episode #%d top cause: %s %s (score %.2f) at %s\n",
			i+1, top.Kind, top.Detail, top.Score, conscale.FormatSimTime(top.At))
	}
}
