// Custom controller: register a scaling policy of your own in the
// controller zoo and drive a cluster with it through the public facade.
//
// The policy here is deliberately tiny — a "queue watcher" that launches
// an app VM whenever requests queue at the tier for three consecutive
// ticks, and ignores everything else. Real policies read more of the
// Observation (tier CPU, the windowed tail, the SCT concurrency signal)
// and act on both tiers; see the built-in families in
// internal/controller for fuller shapes.
//
// Run with:
//
//	go run ./examples/controller
package main

import (
	"fmt"

	"conscale"
)

// queueWatcher scales the app tier out on sustained queueing. It keeps
// no per-run state besides the breach counter, so the same seed and
// trace always reproduce the same decisions.
type queueWatcher struct {
	env    conscale.ControllerEnv
	queued int
}

func (q *queueWatcher) Name() string { return "queue-watcher" }

func (q *queueWatcher) Init(env conscale.ControllerEnv) { q.env = env }

func (q *queueWatcher) Stop() {}

func (q *queueWatcher) Tick(obs *conscale.ControllerObservation) {
	if obs.App.Queue > 0 {
		q.queued++
	} else {
		q.queued = 0
	}
	if q.queued >= 3 && !obs.App.Pending {
		cause := fmt.Sprintf("queue-watcher: %d requests queued for %d ticks", obs.App.Queue, q.queued)
		if q.env.Act.ScaleOut(conscale.TierApp, cause) {
			q.queued = 0
		}
	}
}

func main() {
	// Register the policy under a unique name. Registration makes it
	// buildable by name — including as a `-tournament-controllers` entry
	// in a tournament that embeds this program's package.
	conscale.RegisterController("queue-watcher", func(opts conscale.ControllerOptions) conscale.Controller {
		return &queueWatcher{}
	})

	ctrl, err := conscale.NewController("queue-watcher", conscale.ControllerOptions{Seed: 1})
	if err != nil {
		panic(err)
	}

	// Attach it to a cluster via the runtime: the runtime owns metric
	// collection, decision ticks, dark-tier repair, and the decision log;
	// the policy only decides.
	c := conscale.NewCluster(conscale.DefaultClusterConfig())
	rt := conscale.NewControllerRuntime(c, ctrl, conscale.ControllerOptions{Seed: 1})
	rt.Start()

	// A burst of 4000 users against the 1/1/1 deployment queues the app
	// tier within seconds — exactly what the policy watches for.
	gen := conscale.NewGenerator(c.Eng, conscale.NewRand(1), conscale.GeneratorConfig{
		Trace:     conscale.NewConstantTrace(4000, 120*conscale.Second),
		ThinkTime: 3,
	}, c.Submit)
	gen.Start()
	c.Eng.RunUntil(120 * conscale.Second)
	rt.Stop()

	fmt.Printf("completed %d requests, p99 = %.0f ms, app VMs = %d\n",
		gen.GoodputTotal(), gen.TailLatency(99, 0)*1000, c.ReadyCount(conscale.TierApp))
	for _, e := range rt.Events() {
		fmt.Printf("  t=%5.1fs %-9s %-4s %s\n", float64(e.Time), e.Kind, e.Tier, e.Detail)
	}
}
